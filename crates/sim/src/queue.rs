//! The event queue and the [`Timeline`] scheduling capability.
//!
//! A simulation is driven by draining an [`EventQueue<E>`]: the owner pops
//! `(time, event)` pairs in nondecreasing time order and dispatches them on a
//! top-level event enum. Sub-systems (the GPU fabric, inference engines, …)
//! are written against the [`Timeline`] trait with their *own* event type and
//! are embedded into the top-level enum through [`Lift`], which keeps every
//! crate independently testable.
//!
//! # Heap layout
//!
//! [`EventQueue`] is an indexed 4-ary min-heap over packed `u128` keys
//! (`(time_ns << 64) | seq`), so time order *and* FIFO tie-breaking resolve
//! in a single integer comparison. Keys live in their own array, separate
//! from the event payloads: sift operations touch only the dense key array
//! (four children share a cache line) and move payloads once per level at
//! most. The 4-ary shape halves tree depth versus a binary heap, trading a
//! few extra comparisons per level for far fewer cache misses — the winning
//! trade for the simulator's hot dispatch loop. The previous
//! `BinaryHeap<Reverse<…>>` implementation is retained as
//! [`BinaryHeapQueue`] to serve as the differential-testing and benchmark
//! reference.
//!
//! # Monotonic-stamp guard
//!
//! `schedule_at` with a target earlier than the last dispatched stamp is a
//! bug in the scheduling code (a stale push would silently reorder against
//! events that already fired). Debug builds **panic** with a diagnostic;
//! release builds clamp to `now()` as a causality backstop, preserving the
//! long-standing documented behavior for production runs.
//!
//! # External injection
//!
//! Open-system (live) runs feed events into the queue from other threads
//! through an [`InjectionPort`]: a thread-safe channel whose receiving side
//! stamps every item with the monotonic guard
//! `stamp = max(requested, now + 1 ns, last_stamp + 1 ns)` and only
//! *admits* an item once the heap holds nothing earlier than its stamp.
//! Those two rules make the admission point a pure function of the queue
//! state, so replaying the recorded stamps offline reproduces the exact
//! event order (including FIFO tie-breaking) of the live run.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::marker::PhantomData;
use std::sync::mpsc;

use serde::Serialize;

use crate::time::{SimDur, SimTime};

/// The capability to read the clock and schedule future events of type `E`.
pub trait Timeline<E> {
    /// The current simulated instant.
    fn now(&self) -> SimTime;

    /// Schedules `ev` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a bug in the caller: debug builds panic
    /// with a diagnostic (the monotonic-stamp guard); release builds clamp
    /// to `now()` so that causality is still preserved — the event fires at
    /// the current instant, after events already queued for it.
    fn schedule_at(&mut self, at: SimTime, ev: E);

    /// Schedules `ev` to fire `d` after the current instant.
    fn schedule_after(&mut self, d: SimDur, ev: E) {
        let at = self.now() + d;
        self.schedule_at(at, ev);
    }
}

/// Packs `(time, insertion seq)` into one integer so that ordering and FIFO
/// tie-breaking are a single `u128` comparison.
#[inline(always)]
fn pack_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

#[inline(always)]
fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

/// A monotonic event heap with stable FIFO ordering for simultaneous events.
///
/// # Examples
///
/// ```
/// use aegaeon_sim::{EventQueue, SimDur, Timeline};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_after(SimDur::from_secs(2), "b");
/// q.schedule_after(SimDur::from_secs(1), "a");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Packed `(time, seq)` keys, heap-ordered; `evs[i]` is `keys[i]`'s payload.
    keys: Vec<u128>,
    evs: Vec<E>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

/// Heap arity. Four children per node halves depth versus binary and keeps
/// sibling keys within a cache line (4 × 16 bytes).
const ARITY: usize = 4;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            evs: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Swaps two payloads without bounds checks.
    ///
    /// # Safety
    /// `a` and `b` must both be in bounds of `self.evs`.
    #[inline(always)]
    unsafe fn swap_evs(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.evs.len() && b < self.evs.len());
        let p = self.evs.as_mut_ptr();
        std::ptr::swap(p.add(a), p.add(b));
    }

    /// Moves the element at `pos` up until its parent is no larger.
    ///
    /// Uses unchecked indexing: `pos` is always a valid index and every
    /// parent index is strictly smaller, so bounds can never be exceeded.
    #[inline]
    fn sift_up(&mut self, mut pos: usize) {
        debug_assert!(pos < self.keys.len());
        // SAFETY: `pos < len` on entry; `parent = (pos-1)/ARITY < pos`, so
        // every index touched stays in bounds.
        unsafe {
            let key = *self.keys.get_unchecked(pos);
            while pos > 0 {
                let parent = (pos - 1) / ARITY;
                let pkey = *self.keys.get_unchecked(parent);
                if pkey <= key {
                    break;
                }
                *self.keys.get_unchecked_mut(pos) = pkey;
                self.swap_evs(pos, parent);
                pos = parent;
            }
            *self.keys.get_unchecked_mut(pos) = key;
        }
    }

    /// Moves the element at `pos` down until no child is smaller.
    #[inline]
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.keys.len();
        debug_assert!(pos < len);
        // SAFETY: `pos < len` on entry and is only ever replaced by a child
        // index `< last <= len`; child scans are bounded by `last`.
        unsafe {
            let key = *self.keys.get_unchecked(pos);
            loop {
                let first = pos * ARITY + 1;
                if first >= len {
                    break;
                }
                let last = (first + ARITY).min(len);
                // Scan the (dense, cache-adjacent) child keys for the minimum.
                let mut min_child = first;
                let mut min_key = *self.keys.get_unchecked(first);
                for c in first + 1..last {
                    let k = *self.keys.get_unchecked(c);
                    if k < min_key {
                        min_key = k;
                        min_child = c;
                    }
                }
                if min_key >= key {
                    break;
                }
                *self.keys.get_unchecked_mut(pos) = min_key;
                self.swap_evs(pos, min_child);
                pos = min_child;
            }
            *self.keys.get_unchecked_mut(pos) = key;
        }
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &first_key = self.keys.first()?;
        let at = key_time(first_key);
        debug_assert!(at >= self.now, "event heap went backwards in time");
        self.keys.swap_remove(0);
        let ev = self.evs.swap_remove(0);
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        self.now = at;
        self.popped += 1;
        Some((at, ev))
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| key_time(k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total number of events dispatched so far (for throughput reporting).
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }
}

/// Debug-build monotonic-stamp guard shared by both queue implementations:
/// a push earlier than the last dispatched stamp would silently reorder
/// against events that already fired, so it panics with enough context to
/// find the stale scheduler. Release builds clamp instead (causality
/// backstop).
#[inline]
fn check_stamp(at: SimTime, now: SimTime, seq: u64) {
    #[cfg(debug_assertions)]
    if at < now {
        panic!(
            "stale event push: schedule_at({} ns) is {} ns earlier than the last \
             dispatched stamp ({} ns, push seq {}); events must not be scheduled \
             in the past",
            at.as_nanos(),
            now.as_nanos() - at.as_nanos(),
            now.as_nanos(),
            seq,
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = (at, now, seq);
}

impl<E> Timeline<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, at: SimTime, ev: E) {
        check_stamp(at, self.now, self.seq);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.keys.push(pack_key(at, seq));
        self.evs.push(ev);
        self.sift_up(self.keys.len() - 1);
    }
}

// ----- External injection ---------------------------------------------------

/// Cloneable, thread-safe sending side of an [`InjectionPort`].
///
/// `send(not_before, item)` asks for the item to enter the simulation no
/// earlier than `not_before`; the port may bump the stamp forward to keep
/// stamps strictly increasing and strictly ahead of the sim clock.
#[derive(Debug)]
pub struct Injector<I> {
    tx: mpsc::Sender<(SimTime, I)>,
}

// Derived `Clone` would require `I: Clone`; the sender clones regardless.
impl<I> Clone for Injector<I> {
    fn clone(&self) -> Self {
        Injector {
            tx: self.tx.clone(),
        }
    }
}

impl<I> Injector<I> {
    /// Queues `item` for injection at `not_before` or later. Returns `false`
    /// if the port has been dropped (the session is gone).
    pub fn send(&self, not_before: SimTime, item: I) -> bool {
        self.tx.send((not_before, item)).is_ok()
    }
}

/// Receiving side of the external-injection channel: stamps items with the
/// monotonic guard and decides *when* each may enter the event heap.
///
/// Determinism contract (proven by the gateway's differential replay test):
///
/// * **Stamping** (`pump`): `stamp = max(requested, now + 1 ns,
///   last_stamp + 1 ns)`. Stamps are strictly increasing and strictly in
///   the future, so an injected event can never tie with an event popped in
///   the same dispatch batch.
/// * **Admission** (`admit`): the front item is released only when the heap
///   is empty or its next event time is `>= stamp`. Since the stamp is
///   recorded, an offline replay that re-injects the recorded stamps admits
///   every item at the *same pop boundary* with the *same push sequence
///   number*, making live and replayed runs bit-identical.
#[derive(Debug)]
pub struct InjectionPort<I> {
    rx: mpsc::Receiver<(SimTime, I)>,
    pending: VecDeque<(SimTime, I)>,
    last_stamp: SimTime,
}

/// Creates a connected `(Injector, InjectionPort)` pair.
pub fn injection_channel<I>() -> (Injector<I>, InjectionPort<I>) {
    let (tx, rx) = mpsc::channel();
    (
        Injector { tx },
        InjectionPort {
            rx,
            pending: VecDeque::new(),
            last_stamp: SimTime::ZERO,
        },
    )
}

impl<I> InjectionPort<I> {
    /// Drains the channel, stamping each item against `q`'s clock with the
    /// monotonic guard. Returns the number of newly stamped items.
    pub fn pump<E>(&mut self, q: &EventQueue<E>) -> usize {
        let mut n = 0;
        while let Ok((not_before, item)) = self.rx.try_recv() {
            let one = SimDur::from_nanos(1);
            let stamp = not_before.max(q.now() + one).max(self.last_stamp + one);
            self.last_stamp = stamp;
            self.pending.push_back((stamp, item));
            n += 1;
        }
        n
    }

    /// Releases the front stamped item if it may enter the simulation now:
    /// the heap is empty, or nothing in it fires before the item's stamp.
    /// Call in a loop before every pop; the caller schedules the returned
    /// item at exactly its stamp.
    pub fn admit<E>(&mut self, q: &EventQueue<E>) -> Option<(SimTime, I)> {
        let stamp = self.pending.front()?.0;
        match q.peek_time() {
            Some(t) if t < stamp => None,
            _ => self.pending.pop_front(),
        }
    }

    /// Stamped items not yet admitted.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Stamp of the next item awaiting admission.
    pub fn next_stamp(&self) -> Option<SimTime> {
        self.pending.front().map(|&(s, _)| s)
    }

    /// The most recent stamp handed out (`SimTime::ZERO` before the first).
    pub fn last_stamp(&self) -> SimTime {
        self.last_stamp
    }
}

// ----- Reference implementation --------------------------------------------

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the reference
/// implementation for differential tests and benchmark baselines. Same
/// contract as [`EventQueue`], including past-clamping `schedule_at`.
#[derive(Debug)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.ev))
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }
}

impl<E> Timeline<E> for BinaryHeapQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, at: SimTime, ev: E) {
        check_stamp(at, self.now, self.seq);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }
}

// ----- Throughput reporting -------------------------------------------------

/// Raw-speed summary of one simulation run, derived from the queue's
/// dispatch counter and a wall-clock measurement taken by the caller.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ThroughputReport {
    /// Events dispatched over the run.
    pub events: u64,
    /// Simulated seconds covered.
    pub sim_secs: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
}

impl ThroughputReport {
    /// Builds a report from a drained queue's counter and measured wall time.
    pub fn new(events: u64, sim_secs: f64, wall_secs: f64) -> Self {
        ThroughputReport {
            events,
            sim_secs,
            wall_secs,
        }
    }

    /// Events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            f64::INFINITY
        }
    }

    /// Wall-clock seconds spent per simulated second (lower is faster).
    pub fn wall_per_sim_sec(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.wall_secs / self.sim_secs
        } else {
            0.0
        }
    }
}

// ----- Lift -----------------------------------------------------------------

/// Adapter embedding a sub-system event type `Sub` into an outer timeline
/// whose event type is `E`, via a mapping function.
///
/// # Examples
///
/// ```
/// use aegaeon_sim::{EventQueue, Lift, SimDur, Timeline};
///
/// enum Top { Gpu(u32) }
///
/// fn gpu_subsystem(tl: &mut impl Timeline<u32>) {
///     tl.schedule_after(SimDur::from_millis(1), 7);
/// }
///
/// let mut q: EventQueue<Top> = EventQueue::new();
/// gpu_subsystem(&mut Lift::new(&mut q, Top::Gpu));
/// let (_, Top::Gpu(x)) = q.pop().unwrap();
/// assert_eq!(x, 7);
/// ```
pub struct Lift<'a, T: ?Sized, F, E> {
    inner: &'a mut T,
    map: F,
    _outer: PhantomData<fn(E)>,
}

impl<'a, T: ?Sized, F, E> Lift<'a, T, F, E> {
    /// Wraps `inner`, translating scheduled sub-events through `map`.
    pub fn new(inner: &'a mut T, map: F) -> Self {
        Lift {
            inner,
            map,
            _outer: PhantomData,
        }
    }
}

impl<Sub, E, T, F> Timeline<Sub> for Lift<'_, T, F, E>
where
    T: Timeline<E> + ?Sized,
    F: Fn(Sub) -> E,
{
    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn schedule_at(&mut self, at: SimTime, ev: Sub) {
        self.inner.schedule_at(at, (self.map)(ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(3.0), 3u32);
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
        q.schedule_at(SimTime::from_secs_f64(2.0), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDur::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(5.0));
    }

    // The causality backstop only exists in release builds; debug builds
    // treat a past push as a bug (see `stale_push_panics_in_debug`).
    #[test]
    #[cfg(not(debug_assertions))]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(2.0), 0u32);
        q.pop();
        // The clock is at 2 s; scheduling for 1 s fires "now", and after
        // anything else already queued for 2 s.
        q.schedule_at(SimTime::from_secs_f64(2.0), 1);
        q.schedule_at(SimTime::from_secs_f64(1.0), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs_f64(2.0), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs_f64(2.0), 2)));
    }

    // Monotonic-stamp guard regression test: a stale push used to clamp
    // silently; debug builds must now flag it at the call site.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale event push")]
    fn stale_push_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(2.0), 0u32);
        q.pop();
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale event push")]
    fn stale_push_panics_in_debug_reference_queue() {
        let mut q = BinaryHeapQueue::new();
        q.schedule_at(SimTime::from_secs_f64(2.0), 0u32);
        q.pop();
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
    }

    #[test]
    fn injection_stamps_are_strictly_increasing_and_future() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(1.0), 0);
        q.pop(); // clock at 1 s
        let (inj, mut port) = injection_channel::<u32>();
        // Requested in the past, at now, and twice at the same instant.
        inj.send(SimTime::ZERO, 10);
        inj.send(SimTime::from_secs_f64(1.0), 11);
        inj.send(SimTime::from_secs_f64(5.0), 12);
        inj.send(SimTime::from_secs_f64(5.0), 13);
        assert_eq!(port.pump(&q), 4);
        let mut stamps = Vec::new();
        while let Some((s, _)) = port.admit(&q) {
            stamps.push(s);
        }
        assert_eq!(stamps.len(), 4);
        let one = SimDur::from_nanos(1);
        assert_eq!(stamps[0], SimTime::from_secs_f64(1.0) + one);
        assert_eq!(stamps[1], stamps[0] + one);
        assert_eq!(stamps[2], SimTime::from_secs_f64(5.0));
        assert_eq!(stamps[3], SimTime::from_secs_f64(5.0) + one);
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn admission_waits_for_the_pop_boundary() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(1.0), 0);
        q.schedule_at(SimTime::from_secs_f64(3.0), 1);
        let (inj, mut port) = injection_channel::<u32>();
        inj.send(SimTime::from_secs_f64(2.0), 42);
        port.pump(&q);
        // The 1 s event fires first: not admissible yet.
        assert!(port.admit(&q).is_none());
        q.pop();
        // Next heap event is 3 s >= stamp 2 s: admissible now.
        let (stamp, item) = port.admit(&q).expect("admissible");
        assert_eq!(item, 42);
        assert_eq!(stamp, SimTime::from_secs_f64(2.0));
        q.schedule_at(stamp, 42);
        assert_eq!(q.pop(), Some((SimTime::from_secs_f64(2.0), 42)));
    }

    #[test]
    fn admission_on_empty_heap_and_cross_thread_send() {
        let (inj, mut port) = injection_channel::<u32>();
        let t = std::thread::spawn(move || {
            inj.send(SimTime::from_secs_f64(7.0), 7);
        });
        t.join().unwrap();
        let q: EventQueue<u32> = EventQueue::new();
        port.pump(&q);
        assert_eq!(port.next_stamp(), Some(SimTime::from_secs_f64(7.0)));
        let (stamp, item) = port.admit(&q).expect("empty heap admits");
        assert_eq!((stamp, item), (SimTime::from_secs_f64(7.0), 7));
        assert_eq!(port.pending(), 0);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        // Exercise sift_down paths with a sawtooth workload large enough to
        // build several heap levels.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for round in 0..20u64 {
            for i in 0..50u64 {
                let t = SimTime::from_nanos(1_000 + (i * 7919 + round * 104_729) % 5_000);
                // Raw sawtooth targets fall behind the clock as pops advance
                // it; clamp to honor the monotonic-stamp contract.
                q.schedule_at(t.max(q.now()), (round, i));
            }
            for _ in 0..25 {
                expect.push(q.pop().expect("events pending"));
            }
        }
        while let Some(e) = q.pop() {
            expect.push(e);
        }
        let times: Vec<SimTime> = expect.iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "pop order must be nondecreasing in time");
        assert_eq!(expect.len(), 20 * 50);
    }

    #[test]
    fn lift_translates_events() {
        #[derive(Debug, PartialEq)]
        enum Top {
            A(u8),
            B(char),
        }
        let mut q: EventQueue<Top> = EventQueue::new();
        {
            let mut la = Lift::new(&mut q, Top::A);
            la.schedule_after(SimDur::from_secs(2), 9);
        }
        {
            let mut lb = Lift::new(&mut q, Top::B);
            lb.schedule_after(SimDur::from_secs(1), 'x');
        }
        assert_eq!(q.pop().unwrap().1, Top::B('x'));
        assert_eq!(q.pop().unwrap().1, Top::A(9));
    }

    #[test]
    fn nested_lifts_compose() {
        #[derive(Debug, PartialEq)]
        enum Top {
            Mid(Mid),
        }
        #[derive(Debug, PartialEq)]
        enum Mid {
            Leaf(u32),
        }
        let mut q: EventQueue<Top> = EventQueue::new();
        let mut mid = Lift::new(&mut q, Top::Mid);
        let mut leaf = Lift::new(&mut mid, Mid::Leaf);
        leaf.schedule_after(SimDur::ZERO, 42);
        assert_eq!(q.pop().unwrap().1, Top::Mid(Mid::Leaf(42)));
    }

    #[test]
    fn dispatch_counter_counts() {
        let mut q = EventQueue::new();
        for _ in 0..10 {
            q.schedule_after(SimDur::ZERO, ());
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_dispatched(), 10);
    }

    #[test]
    fn reference_queue_matches_on_fixed_schedule() {
        let mut fast = EventQueue::new();
        let mut slow = BinaryHeapQueue::new();
        for i in 0..500u64 {
            let t = SimTime::from_nanos(i.wrapping_mul(6_364_136_223_846_793_005) % 10_000);
            fast.schedule_at(t, i);
            slow.schedule_at(t, i);
        }
        loop {
            let (a, b) = (fast.pop(), slow.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn throughput_report_math() {
        let r = ThroughputReport::new(1_000_000, 400.0, 2.0);
        assert_eq!(r.events_per_sec(), 500_000.0);
        assert_eq!(r.wall_per_sim_sec(), 0.005);
    }
}
