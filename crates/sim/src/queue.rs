//! The event queue and the [`Timeline`] scheduling capability.
//!
//! A simulation is driven by draining an [`EventQueue<E>`]: the owner pops
//! `(time, event)` pairs in nondecreasing time order and dispatches them on a
//! top-level event enum. Sub-systems (the GPU fabric, inference engines, …)
//! are written against the [`Timeline`] trait with their *own* event type and
//! are embedded into the top-level enum through [`Lift`], which keeps every
//! crate independently testable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;

use crate::time::{SimDur, SimTime};

/// The capability to read the clock and schedule future events of type `E`.
pub trait Timeline<E> {
    /// The current simulated instant.
    fn now(&self) -> SimTime;

    /// Schedules `ev` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; implementations clamp to
    /// `now()` so that causality is preserved, but debug builds assert.
    fn schedule_at(&mut self, at: SimTime, ev: E);

    /// Schedules `ev` to fire `d` after the current instant.
    fn schedule_after(&mut self, d: SimDur, ev: E) {
        let at = self.now() + d;
        self.schedule_at(at, ev);
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A monotonic event heap with stable FIFO ordering for simultaneous events.
///
/// # Examples
///
/// ```
/// use aegaeon_sim::{EventQueue, SimDur, Timeline};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_after(SimDur::from_secs(2), "b");
/// q.schedule_after(SimDur::from_secs(1), "a");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event heap went backwards in time");
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.ev))
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events dispatched so far (for throughput reporting).
    pub fn events_dispatched(&self) -> u64 {
        self.popped
    }
}

impl<E> Timeline<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, at: SimTime, ev: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }
}

/// Adapter embedding a sub-system event type `Sub` into an outer timeline
/// whose event type is `E`, via a mapping function.
///
/// # Examples
///
/// ```
/// use aegaeon_sim::{EventQueue, Lift, SimDur, Timeline};
///
/// enum Top { Gpu(u32) }
///
/// fn gpu_subsystem(tl: &mut impl Timeline<u32>) {
///     tl.schedule_after(SimDur::from_millis(1), 7);
/// }
///
/// let mut q: EventQueue<Top> = EventQueue::new();
/// gpu_subsystem(&mut Lift::new(&mut q, Top::Gpu));
/// let (_, Top::Gpu(x)) = q.pop().unwrap();
/// assert_eq!(x, 7);
/// ```
pub struct Lift<'a, T: ?Sized, F, E> {
    inner: &'a mut T,
    map: F,
    _outer: PhantomData<fn(E)>,
}

impl<'a, T: ?Sized, F, E> Lift<'a, T, F, E> {
    /// Wraps `inner`, translating scheduled sub-events through `map`.
    pub fn new(inner: &'a mut T, map: F) -> Self {
        Lift {
            inner,
            map,
            _outer: PhantomData,
        }
    }
}

impl<Sub, E, T, F> Timeline<Sub> for Lift<'_, T, F, E>
where
    T: Timeline<E> + ?Sized,
    F: Fn(Sub) -> E,
{
    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn schedule_at(&mut self, at: SimTime, ev: Sub) {
        self.inner.schedule_at(at, (self.map)(ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(3.0), 3u32);
        q.schedule_at(SimTime::from_secs_f64(1.0), 1);
        q.schedule_at(SimTime::from_secs_f64(2.0), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDur::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn lift_translates_events() {
        #[derive(Debug, PartialEq)]
        enum Top {
            A(u8),
            B(char),
        }
        let mut q: EventQueue<Top> = EventQueue::new();
        {
            let mut la = Lift::new(&mut q, Top::A);
            la.schedule_after(SimDur::from_secs(2), 9);
        }
        {
            let mut lb = Lift::new(&mut q, Top::B);
            lb.schedule_after(SimDur::from_secs(1), 'x');
        }
        assert_eq!(q.pop().unwrap().1, Top::B('x'));
        assert_eq!(q.pop().unwrap().1, Top::A(9));
    }

    #[test]
    fn nested_lifts_compose() {
        #[derive(Debug, PartialEq)]
        enum Top {
            Mid(Mid),
        }
        #[derive(Debug, PartialEq)]
        enum Mid {
            Leaf(u32),
        }
        let mut q: EventQueue<Top> = EventQueue::new();
        let mut mid = Lift::new(&mut q, Top::Mid);
        let mut leaf = Lift::new(&mut mid, Mid::Leaf);
        leaf.schedule_after(SimDur::ZERO, 42);
        assert_eq!(q.pop().unwrap().1, Top::Mid(Mid::Leaf(42)));
    }

    #[test]
    fn dispatch_counter_counts() {
        let mut q = EventQueue::new();
        for _ in 0..10 {
            q.schedule_after(SimDur::ZERO, ());
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_dispatched(), 10);
    }
}
