//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The simulation clock is a `u64` count of nanoseconds since simulation
//! start. Wrapping is not a concern (2^64 ns ≈ 584 years of simulated time),
//! so all arithmetic is checked in debug builds via the standard operators.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDur(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDur::from_secs_f64(secs).0)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// The empty duration.
    pub const ZERO: SimDur = SimDur(0);
    /// The greatest representable duration.
    pub const MAX: SimDur = SimDur(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDur(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDur::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDur((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: f64) -> SimDur {
        SimDur::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0 as f64 / 1e9)?;
        write!(f, "s")
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.1}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        let d = SimDur::from_millis(250);
        assert_eq!((t + d).as_secs_f64(), 1.75);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_secs_f64(1.25));
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(SimDur::from_secs(2), SimDur::from_millis(2000));
        assert_eq!(SimDur::from_millis(3), SimDur::from_micros(3000));
        assert_eq!(SimDur::from_micros(5), SimDur::from_nanos(5000));
        assert_eq!(SimDur::from_secs_f64(0.25), SimDur::from_millis(250));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.saturating_since(b), SimDur::ZERO);
        assert_eq!(b.saturating_since(a), SimDur::from_secs(1));
    }

    #[test]
    fn dur_scaling() {
        let d = SimDur::from_millis(100);
        assert_eq!(d * 3, SimDur::from_millis(300));
        assert_eq!(d / 2, SimDur::from_millis(50));
        assert_eq!(d * 2.5, SimDur::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_duration_panics() {
        let _ = SimDur::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDur::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDur::from_micros(7)), "7.0us");
    }
}
