//! Interval tracing for schedule timelines.
//!
//! The experiments for Figures 2 and 6 render Gantt-style schedules
//! (prefill/decoding/switching intervals per GPU). Components record labeled
//! intervals into a [`TraceLog`]; the bench harness renders them as ASCII
//! timelines. Tracing is off by default; when disabled, [`record_with`]
//! costs one branch — the label closure is never called, so label
//! `format!`s in hot loops allocate nothing.
//!
//! Lane names are interned as `Arc<str>`: each recorded interval holds a
//! pointer-sized handle rather than its own `String`, and the distinct-lane
//! list is maintained incrementally at record time instead of being
//! recomputed by an O(intervals × lanes) scan per [`lanes`] call.
//!
//! [`record_with`]: TraceLog::record_with
//! [`lanes`]: TraceLog::lanes

use std::sync::Arc;

use crate::time::SimTime;

/// Classifies an interval for rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A prefill job.
    Prefill,
    /// One or more decoding steps.
    Decode,
    /// Auto-scaling work (model load, engine init, gc, …).
    Switch,
    /// KV cache transfer.
    KvTransfer,
    /// Queue waiting time.
    Wait,
    /// Anything else.
    Other,
}

/// A labeled, half-open interval `[start, end)` on a named lane.
#[derive(Debug, Clone)]
pub struct TraceInterval {
    /// Rendering lane, e.g. `"gpu0"` (interned; clones are pointer copies).
    pub lane: Arc<str>,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Short label, e.g. `"P:modelA"`.
    pub label: String,
}

/// A collection of trace intervals.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    intervals: Vec<TraceInterval>,
    /// Distinct lanes in first-appearance order; doubles as the intern table.
    lanes: Vec<Arc<str>>,
}

impl TraceLog {
    /// Creates a disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Creates an enabled log.
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            ..TraceLog::default()
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the interned handle for `lane`, registering it on first use.
    fn intern(&mut self, lane: &str) -> Arc<str> {
        // Lane counts are tiny (one per GPU), so a linear probe beats a map.
        if let Some(l) = self.lanes.iter().find(|l| &***l == lane) {
            return Arc::clone(l);
        }
        let l: Arc<str> = Arc::from(lane);
        self.lanes.push(Arc::clone(&l));
        l
    }

    /// Records an interval if enabled.
    ///
    /// The label here is eagerly constructed; in hot paths prefer
    /// [`record_with`](Self::record_with), whose label closure only runs
    /// when the log is enabled.
    pub fn record(
        &mut self,
        lane: impl AsRef<str>,
        start: SimTime,
        end: SimTime,
        kind: TraceKind,
        label: impl Into<String>,
    ) {
        self.record_with(lane, start, end, kind, || label.into());
    }

    /// Records an interval if enabled, building the label lazily.
    ///
    /// When the log is disabled this is a single branch: neither the label
    /// closure nor any allocation runs.
    pub fn record_with<S: Into<String>>(
        &mut self,
        lane: impl AsRef<str>,
        start: SimTime,
        end: SimTime,
        kind: TraceKind,
        label: impl FnOnce() -> S,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start, "trace interval with negative length");
        let lane = self.intern(lane.as_ref());
        self.intervals.push(TraceInterval {
            lane,
            start,
            end,
            kind,
            label: label().into(),
        });
    }

    /// All recorded intervals in recording order.
    pub fn intervals(&self) -> &[TraceInterval] {
        &self.intervals
    }

    /// Distinct lane names in first-appearance order.
    pub fn lanes(&self) -> &[Arc<str>] {
        &self.lanes
    }

    /// Drops all recorded intervals (and the lane table).
    pub fn clear(&mut self) {
        self.intervals.clear();
        self.lanes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(
            "gpu0",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
            TraceKind::Prefill,
            "P1",
        );
        assert!(log.intervals().is_empty());
        assert!(log.lanes().is_empty());
    }

    #[test]
    fn disabled_log_never_runs_label_closure() {
        let mut log = TraceLog::disabled();
        let mut called = false;
        log.record_with(
            "gpu0",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
            TraceKind::Prefill,
            || {
                called = true;
                "P1"
            },
        );
        assert!(!called, "label closure must not run when disabled");
    }

    #[test]
    fn enabled_log_preserves_order_and_lanes() {
        let mut log = TraceLog::enabled();
        let t1 = SimTime::from_secs_f64(1.0);
        let t2 = SimTime::from_secs_f64(2.0);
        log.record("gpu1", SimTime::ZERO, t1, TraceKind::Prefill, "P1");
        log.record("gpu0", t1, t2, TraceKind::Decode, "D1");
        log.record("gpu1", t1, t2, TraceKind::Switch, "S");
        assert_eq!(log.intervals().len(), 3);
        let lanes: Vec<&str> = log.lanes().iter().map(|l| &**l).collect();
        assert_eq!(lanes, vec!["gpu1", "gpu0"]);
    }

    #[test]
    fn lanes_are_interned() {
        let mut log = TraceLog::enabled();
        let t1 = SimTime::from_secs_f64(1.0);
        log.record("gpu0", SimTime::ZERO, t1, TraceKind::Prefill, "a");
        log.record("gpu0", SimTime::ZERO, t1, TraceKind::Decode, "b");
        let ivs = log.intervals();
        assert!(
            Arc::ptr_eq(&ivs[0].lane, &ivs[1].lane),
            "same lane must share one allocation"
        );
    }
}
