//! Interval tracing for schedule timelines.
//!
//! The experiments for Figures 2 and 6 render Gantt-style schedules
//! (prefill/decoding/switching intervals per GPU). Components record labeled
//! intervals into a [`TraceLog`]; the bench harness renders them as ASCII
//! timelines. Tracing is off by default and costs one branch when disabled.

use crate::time::SimTime;

/// Classifies an interval for rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A prefill job.
    Prefill,
    /// One or more decoding steps.
    Decode,
    /// Auto-scaling work (model load, engine init, gc, …).
    Switch,
    /// KV cache transfer.
    KvTransfer,
    /// Queue waiting time.
    Wait,
    /// Anything else.
    Other,
}

/// A labeled, half-open interval `[start, end)` on a named lane.
#[derive(Debug, Clone)]
pub struct TraceInterval {
    /// Rendering lane, e.g. `"gpu0"`.
    pub lane: String,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Short label, e.g. `"P:modelA"`.
    pub label: String,
}

/// A collection of trace intervals.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    intervals: Vec<TraceInterval>,
}

impl TraceLog {
    /// Creates a disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog {
            enabled: false,
            intervals: Vec::new(),
        }
    }

    /// Creates an enabled log.
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            intervals: Vec::new(),
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an interval if enabled.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        start: SimTime,
        end: SimTime,
        kind: TraceKind,
        label: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start, "trace interval with negative length");
        self.intervals.push(TraceInterval {
            lane: lane.into(),
            start,
            end,
            kind,
            label: label.into(),
        });
    }

    /// All recorded intervals in recording order.
    pub fn intervals(&self) -> &[TraceInterval] {
        &self.intervals
    }

    /// Distinct lane names in first-appearance order.
    pub fn lanes(&self) -> Vec<String> {
        let mut lanes: Vec<String> = Vec::new();
        for iv in &self.intervals {
            if !lanes.contains(&iv.lane) {
                lanes.push(iv.lane.clone());
            }
        }
        lanes
    }

    /// Drops all recorded intervals.
    pub fn clear(&mut self) {
        self.intervals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(
            "gpu0",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
            TraceKind::Prefill,
            "P1",
        );
        assert!(log.intervals().is_empty());
    }

    #[test]
    fn enabled_log_preserves_order_and_lanes() {
        let mut log = TraceLog::enabled();
        let t1 = SimTime::from_secs_f64(1.0);
        let t2 = SimTime::from_secs_f64(2.0);
        log.record("gpu1", SimTime::ZERO, t1, TraceKind::Prefill, "P1");
        log.record("gpu0", t1, t2, TraceKind::Decode, "D1");
        log.record("gpu1", t1, t2, TraceKind::Switch, "S");
        assert_eq!(log.intervals().len(), 3);
        assert_eq!(log.lanes(), vec!["gpu1".to_string(), "gpu0".to_string()]);
    }
}
