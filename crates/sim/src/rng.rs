//! Deterministic randomness for simulations.
//!
//! All stochastic inputs (arrival processes, request lengths, latency noise)
//! draw from a [`SimRng`] seeded once per experiment; identical seeds yield
//! identical traces, which an integration test asserts end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Pareto};

/// A seeded random source with the distributions the workloads need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent generator (for per-component streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform sample in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Exponential sample with rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn exp(&mut self, lambda: f64) -> f64 {
        Exp::new(lambda)
            .expect("exp rate must be positive")
            .sample(&mut self.inner)
    }

    /// Log-normal sample parameterized by the *target* mean and the sigma of
    /// the underlying normal (a common fit for LLM request lengths).
    pub fn lognormal_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        // E[LogNormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        let mu = mean.ln() - sigma * sigma / 2.0;
        LogNormal::new(mu, sigma)
            .expect("lognormal parameters must be finite")
            .sample(&mut self.inner)
    }

    /// Pareto sample with scale `x_m` and shape `alpha` (popularity skew).
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        Pareto::new(x_m, alpha)
            .expect("pareto parameters must be positive")
            .sample(&mut self.inner)
    }

    /// Multiplicative noise factor `exp(N(0, sigma))`, used for latency jitter.
    pub fn noise(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        LogNormal::new(0.0, sigma)
            .expect("noise sigma must be finite")
            .sample(&mut self.inner)
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Access to the raw `rand` generator for anything not covered above.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.f64(), b.f64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn exp_mean_is_one_over_lambda() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.lognormal_mean(300.0, 0.8)).sum::<f64>() / n as f64;
        assert!((mean - 300.0).abs() / 300.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from_u64(9);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn noise_with_zero_sigma_is_identity() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.noise(0.0), 1.0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = SimRng::seed_from_u64(5);
        let mut c = a.fork();
        // Consuming from the fork must not disturb the parent's determinism.
        let mut b = SimRng::seed_from_u64(5);
        let _ = b.fork();
        let _: Vec<f64> = (0..10).map(|_| c.f64()).collect();
        for _ in 0..10 {
            assert_eq!(a.f64(), b.f64());
        }
    }
}
