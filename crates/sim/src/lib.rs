//! Deterministic discrete-event simulation (DES) kernel.
//!
//! This crate provides the foundation every other Aegaeon crate builds on:
//!
//! * [`SimTime`] / [`SimDur`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a monotonic event heap with stable FIFO tie-breaking.
//! * [`Timeline`] — the scheduling capability handed to sub-systems, plus
//!   [`Lift`] adapters that embed sub-system event enums into a top-level
//!   event enum so each crate stays independently testable.
//! * [`FairLink`] — a fair-share bandwidth resource used to model PCIe,
//!   NVLink and NIC links.
//! * [`SimRng`] — a seeded random source; one seed reproduces one trace.
//! * [`TraceLog`] — interval tracing used to render schedule timelines.
//!
//! The kernel is single-threaded and fully deterministic: given the same
//! seed and the same sequence of API calls, every run produces an identical
//! event order.

pub mod bandwidth;
pub mod hash;
pub mod horizon;
pub mod queue;
pub mod rng;
pub mod stamp;
pub mod stats;
pub mod time;
pub mod trace;

pub use bandwidth::{FairLink, FlowId};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use horizon::{GrantClock, GrantWindow};
pub use queue::{
    injection_channel, BinaryHeapQueue, EventQueue, InjectionPort, Injector, Lift,
    ThroughputReport, Timeline,
};
pub use rng::SimRng;
pub use stamp::Stamp;
pub use stats::Welford;
pub use time::{SimDur, SimTime};
pub use trace::{TraceInterval, TraceKind, TraceLog};
