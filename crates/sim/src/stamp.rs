//! Generation stamps for invalidating in-flight timer events.
//!
//! A discrete-event heap cannot cheaply remove events, so components that
//! reschedule deadlines (e.g. a bandwidth link whose earliest completion
//! changes whenever a flow joins) attach a generation number to every timer
//! they schedule. When the timer fires, a stale generation means the timer
//! was superseded and is ignored.

/// A monotonically increasing generation counter.
#[derive(Debug, Clone, Default)]
pub struct Stamp {
    cur: u64,
}

impl Stamp {
    /// Creates a counter at generation zero.
    pub fn new() -> Self {
        Stamp::default()
    }

    /// Invalidates all previously issued generations and returns the new one.
    pub fn bump(&mut self) -> u64 {
        self.cur += 1;
        self.cur
    }

    /// The current generation.
    pub fn current(&self) -> u64 {
        self.cur
    }

    /// True if `g` is the live generation (i.e. the timer is not stale).
    pub fn is_current(&self, g: u64) -> bool {
        self.cur == g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_invalidates_older_generations() {
        let mut s = Stamp::new();
        let g1 = s.bump();
        assert!(s.is_current(g1));
        let g2 = s.bump();
        assert!(!s.is_current(g1));
        assert!(s.is_current(g2));
        assert_eq!(s.current(), g2);
    }
}
