//! The Aegaeon serving system: disaggregated instances, token-level
//! scheduling and preemptive auto-scaling over the simulated cluster.
//!
//! One [`ServingSystem`] drives a whole run: requests arrive at the proxy,
//! Algorithm 1 places their prefill, prefilled requests hand their KV cache
//! to a decoding instance chosen per Algorithm 2, and every model switch
//! goes through the §5 preemptive auto-scaling pipeline (stage plan on the
//! default stream, prefetching on a separate stream, KV transfers on
//! dedicated streams synchronized with CUDA-like events, move lists plus a
//! reclamation daemon for §5.3 rule ❸).

use std::collections::VecDeque;

use aegaeon_engine::init::PIPELINED_LOAD_EFFICIENCY;
use aegaeon_engine::{scale_up_plan, KvCache, KvCacheConfig, ScaleCost};
use aegaeon_gpu::{ClusterTopology, Completion, EventId, Fabric, GpuId, LinkId, StreamOp};
use aegaeon_mem::{BlockRef, BumpBuffer, FragSampler, ModelCache, MoveList, ShapeKey};
use aegaeon_metrics::{RequestOutcome, Stage};
use aegaeon_model::ModelId;
use aegaeon_sim::{
    EventQueue, FxHashMap, Lift, SimDur, SimRng, SimTime, Timeline, TraceKind, TraceLog,
};
use aegaeon_telemetry::{
    labeled, CostKind, CounterId, GaugeId, HistId, SketchId, SloObservatory, SpanId, SpanKind,
    Telemetry,
};
use aegaeon_workload::{Request, RequestId, SessionId, SloSpec, Trace};

use crate::audit::{AuditReport, AuditView, Auditor, InvariantAuditor, ReqAudit};
use crate::chaos::{FaultEvent, FaultKind};
use crate::config::AegaeonConfig;
use crate::decode::{dispatch_decode, BatchId, WorkList};
use crate::deploy::{build_deploys, ModelDeploy};
use crate::events::{Ev, InstKind, InstRef, Tag};
use crate::prefill::PrefillQueue;
use crate::proxy::MetaStore;
use crate::quota::{decode_quotas, QuotaInputs};
use crate::reqstate::{KvPlace, Phase, PrefixClaim, ReqState};
use crate::result::RunResult;
use crate::sessionbook::{SessEntry, SessPlace, SessionBook};

/// Auto-scaling controller state shared by both instance kinds.
#[derive(Debug)]
struct Scaler {
    current: Option<ModelId>,
    warm: bool,
    prefetched: Option<ModelId>,
    prefetch_inflight: Option<(ModelId, Vec<EventId>)>,
    scaling: Option<Scaling>,
    scale_seq: u64,
    prefetch_seq: u64,
    /// Colocated resident models, LRU first (multi-slot extension; empty
    /// when a single weight slot is configured).
    resident: Vec<ModelId>,
    /// Open telemetry span of the in-flight switch ([`SpanId::NONE`] when
    /// idle or telemetry is off).
    switch_span: SpanId,
}

#[derive(Debug)]
struct Scaling {
    target: ModelId,
    started: SimTime,
    remaining_ops: u32,
    prefetch_hit: bool,
    seq: u64,
}

impl Scaler {
    fn new(warm: bool) -> Scaler {
        Scaler {
            current: None,
            warm,
            prefetched: None,
            prefetch_inflight: None,
            scaling: None,
            scale_seq: 0,
            prefetch_seq: 0,
            resident: Vec::new(),
            switch_span: SpanId::NONE,
        }
    }
}

/// Per-request telemetry side state; only populated when telemetry is on.
#[derive(Debug, Clone, Copy)]
struct ReqTel {
    /// The request's whole-lifetime span.
    root: SpanId,
    /// The currently open phase span (queue wait / prefill / decode round).
    phase: SpanId,
    /// Open KV offload span (on the request's `kv-out` subtrack).
    kv_out: SpanId,
    /// Open KV swap-in span (on the request's `kv-in` subtrack).
    kv_in: SpanId,
    /// Scheduler decision that placed the request's next phase; consumed
    /// as the `cause` link when that phase span opens.
    cause: SpanId,
    /// Ledger instance of the open offload (`u32::MAX` = none) and when it
    /// started, for switch-cost attribution at transfer close.
    kv_out_inst: u32,
    kv_out_start: SimTime,
    /// Same for the open swap-in.
    kv_in_inst: u32,
    kv_in_start: SimTime,
}

impl ReqTel {
    const EMPTY: ReqTel = ReqTel {
        root: SpanId::NONE,
        phase: SpanId::NONE,
        kv_out: SpanId::NONE,
        kv_in: SpanId::NONE,
        cause: SpanId::NONE,
        kv_out_inst: u32::MAX,
        kv_out_start: SimTime::ZERO,
        kv_in_inst: u32::MAX,
        kv_in_start: SimTime::ZERO,
    };
}

/// Pre-registered metric ids (all [`CounterId::NONE`]-style nulls when
/// telemetry is off, making every hot-path op a single branch).
#[derive(Debug)]
pub(crate) struct TelIds {
    c_switches: CounterId,
    c_prefetch_hits: CounterId,
    c_swaps: CounterId,
    c_preemptions: CounterId,
    c_retries: CounterId,
    c_chaos_crashes: CounterId,
    c_chaos_windows: CounterId,
    c_completed: CounterId,
    c_events_dispatched: CounterId,
    pub(crate) c_audit_checks: CounterId,
    pub(crate) c_audit_violations: CounterId,
    c_meta_reads: CounterId,
    c_meta_writes: CounterId,
    /// Live-gateway instruments (observer only; written by the session).
    pub(crate) c_http_completions: CounterId,
    pub(crate) c_http_metrics: CounterId,
    pub(crate) c_http_healthz: CounterId,
    pub(crate) c_http_slo: CounterId,
    pub(crate) c_gw_rejected: CounterId,
    pub(crate) g_wall_lag: GaugeId,
    g_prefill_queue_depth: GaugeId,
    g_decode_work: GaugeId,
    g_decode_batches: GaugeId,
    g_vram_kv_used: GaugeId,
    g_cpu_kv_used: GaugeId,
    g_link_bytes_in_flight: GaugeId,
    g_active_models: GaugeId,
    h_scale_latency: HistId,
    h_batch_size: HistId,
    /// Per-model TTFT/TBT quantile sketches (summary instruments), fed at
    /// request retirement.
    s_ttft: Vec<SketchId>,
    s_tbt: Vec<SketchId>,
    /// Per-model cumulative SLO-attainment gauges, refreshed every poll.
    g_slo_attain: Vec<GaugeId>,
    // Agentic-session instruments (prefix reuse + affinity scheduling).
    c_sess_prefix_hits: CounterId,
    c_sess_reused_tokens: CounterId,
    c_sess_recomputed_tokens: CounterId,
    c_sess_retained_gpu: CounterId,
    c_sess_retained_cpu: CounterId,
    c_sess_evicted: CounterId,
    c_sess_expired: CounterId,
    c_sess_affinity_routed: CounterId,
    c_sess_affinity_fallback: CounterId,
    /// End-to-end latency of individual session turns (arrival → last
    /// token), think gaps excluded by construction: each turn is its own
    /// request, so inter-turn idle time never enters a request's span.
    s_session_turn: SketchId,
}

/// Relative accuracy of the per-model latency sketches (1%).
const SKETCH_ALPHA: f64 = aegaeon_telemetry::observatory::SLO_SKETCH_ALPHA;

impl TelIds {
    /// Registers every instrument; on a disabled registry all ids are null.
    fn register(reg: &mut aegaeon_telemetry::MetricsRegistry, n_models: usize) -> TelIds {
        let mut s_ttft = Vec::with_capacity(n_models);
        let mut s_tbt = Vec::with_capacity(n_models);
        let mut g_slo_attain = Vec::with_capacity(n_models);
        for m in 0..n_models {
            let model = ModelId(m as u32).to_string();
            s_ttft.push(reg.sketch(&labeled("ttft_seconds", "model", &model), SKETCH_ALPHA));
            s_tbt.push(reg.sketch(&labeled("tbt_seconds", "model", &model), SKETCH_ALPHA));
            g_slo_attain.push(reg.gauge(&labeled("slo_attainment", "model", &model)));
        }
        TelIds {
            s_ttft,
            s_tbt,
            g_slo_attain,
            c_switches: reg.counter("switches"),
            c_prefetch_hits: reg.counter("prefetch_hits"),
            c_swaps: reg.counter("kv_swaps"),
            c_preemptions: reg.counter("preemptions"),
            c_retries: reg.counter("proxy_retries"),
            c_chaos_crashes: reg.counter("chaos_crashes"),
            c_chaos_windows: reg.counter("chaos_windows"),
            c_completed: reg.counter("completed_requests"),
            c_events_dispatched: reg.counter("events_dispatched"),
            c_audit_checks: reg.counter("audit_checks"),
            c_audit_violations: reg.counter("audit_violations"),
            c_meta_reads: reg.counter("metastore_reads"),
            c_meta_writes: reg.counter("metastore_writes"),
            c_http_completions: reg.counter("http_completions_requests"),
            c_http_metrics: reg.counter("http_metrics_requests"),
            c_http_healthz: reg.counter("http_healthz_requests"),
            c_http_slo: reg.counter("http_slo_requests"),
            c_gw_rejected: reg.counter("gateway_rejected_requests"),
            g_wall_lag: reg.gauge("wall_clock_lag_secs"),
            g_prefill_queue_depth: reg.gauge("prefill_queue_depth"),
            g_decode_work: reg.gauge("decode_work_requests"),
            g_decode_batches: reg.gauge("decode_batches"),
            g_vram_kv_used: reg.gauge("vram_kv_used_bytes"),
            g_cpu_kv_used: reg.gauge("cpu_kv_used_bytes"),
            g_link_bytes_in_flight: reg.gauge("link_bytes_in_flight"),
            g_active_models: reg.gauge("active_models"),
            h_scale_latency: reg
                .histogram("scale_latency_secs", &[0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0]),
            h_batch_size: reg.histogram("batch_size", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
            c_sess_prefix_hits: reg.counter("session_prefix_hits"),
            c_sess_reused_tokens: reg.counter("session_prefill_tokens_reused"),
            c_sess_recomputed_tokens: reg.counter("session_prefill_tokens_recomputed"),
            c_sess_retained_gpu: reg.counter("session_kv_retained_gpu"),
            c_sess_retained_cpu: reg.counter("session_kv_retained_cpu"),
            c_sess_evicted: reg.counter("session_kv_evicted"),
            c_sess_expired: reg.counter("session_kv_expired"),
            c_sess_affinity_routed: reg.counter("session_affinity_routed"),
            c_sess_affinity_fallback: reg.counter("session_affinity_fallback"),
            s_session_turn: reg.sketch("session_turn_latency_seconds", SKETCH_ALPHA),
        }
    }
}

type ParkedBlocks = MoveList<(ShapeKey, Vec<BlockRef>), EventId>;

#[derive(Debug)]
struct PrefillInst {
    gpus: Vec<GpuId>,
    node: u32,
    queue: PrefillQueue,
    scaler: Scaler,
    gpu_kv: KvCache,
    parked: ParkedBlocks,
    active: Option<RequestId>,
    retry: bool,
    vram: BumpBuffer,
    weights_mark: Option<aegaeon_mem::BumpMark>,
    dead: bool,
}

#[derive(Debug)]
struct TurnState {
    batch: BatchId,
    gen: u64,
    quota: f64,
    decode_started: Option<SimTime>,
    stepping: bool,
    step_reqs: Vec<RequestId>,
    step_dur: f64,
    kv_stall_since: Option<SimTime>,
    /// Open telemetry span covering this turn ([`SpanId::NONE`] when off).
    span: SpanId,
}

#[derive(Debug)]
struct DecodeInst {
    gpus: Vec<GpuId>,
    node: u32,
    work: WorkList,
    scaler: Scaler,
    gpu_kv: KvCache,
    parked: ParkedBlocks,
    round: VecDeque<BatchId>,
    turn: Option<TurnState>,
    turn_gen: u64,
    dead: bool,
}

#[derive(Debug)]
struct NodeState {
    cpu_kv: KvCache,
    cpu_parked: ParkedBlocks,
    model_cache: ModelCache,
    /// Requests whose prefill finished but whose KV offload could not yet
    /// allocate CPU space (retried by the daemon).
    offload_retry: Vec<(InstRef, RequestId)>,
}

/// The serving system (see module docs).
pub struct ServingSystem {
    pub(crate) cfg: AegaeonConfig,
    fabric: Fabric<Tag>,
    topo: ClusterTopology,
    deploys: Vec<ModelDeploy>,
    prefills: Vec<PrefillInst>,
    decodes: Vec<DecodeInst>,
    nodes: Vec<NodeState>,
    pub(crate) reqs: Vec<ReqState>,
    pub(crate) trace: Trace,
    rng: SimRng,
    ready: VecDeque<Completion<Tag>>,
    multis: FxHashMap<u64, (u32, Tag)>,
    next_multi: u64,
    prefetch_enabled: bool,
    weight_slots: u32,
    instant_switches: u64,
    meta: MetaStore,
    /// Materialized fault schedule (chaos engine), sorted by time.
    faults: Vec<FaultEvent>,
    /// Nesting depth of active degradation windows per fabric link.
    link_degrade_depth: Vec<u32>,
    /// Nesting depth of active staging-OOM windows per node.
    stage_oom_depth: Vec<u32>,
    /// Invariant auditor (observer only; `None` = zero-cost disabled path).
    pub(crate) auditor: Option<Box<dyn Auditor + Send>>,
    // Metrics.
    breakdown: aegaeon_metrics::BreakdownAcc,
    scale_latencies: Vec<f64>,
    frag: FragSampler,
    util_samples: Vec<(SimTime, Vec<f64>)>,
    schedule: TraceLog,
    /// Request-lifecycle spans + sampled metrics (observer only).
    pub(crate) tel: Telemetry,
    /// Pre-registered metric ids.
    pub(crate) tm: TelIds,
    /// Per-request span handles; empty when telemetry is off.
    req_tel: Vec<ReqTel>,
    /// Scratch for inter-token gaps at retirement (observer only; reused
    /// across requests so the hot path stays allocation-free after warmup).
    tbt_scratch: Vec<f64>,
    pub(crate) completed: usize,
    arrivals_left: usize,
    swaps: u64,
    scale_count: u64,
    prefetch_hits: u64,
    /// Retained-prefix map + outstanding claims (session affinity).
    sessions: SessionBook,
    prefix_hits: u64,
    prefill_tokens_reused: u64,
    prefill_tokens_recomputed: u64,
    ticks_live: bool,
    /// Tick-stream generation: bumped each time ticks restart so an
    /// idle-stopped tick still in the queue cannot fork a second stream.
    tick_gen: u64,
    pub(crate) hard_stop: SimTime,
    /// Live-session token tap (observer only; drained after every event).
    pub(crate) tap: Vec<crate::events::TokenEv>,
    pub(crate) tap_enabled: bool,
    /// Sharded-run mode: a total tier loss hands stranded requests to the
    /// shard coordinator via [`ServingSystem::outbox`] instead of being a
    /// fatal condition. Off (the default) preserves the historical asserts.
    pub(crate) shard_mode: bool,
    /// Requests handed off to the shard coordinator this window (drained at
    /// every synchronization barrier; always empty outside shard mode).
    pub(crate) outbox: Vec<crate::shard::Handoff>,
    /// Total requests handed off (locally resolved without completing).
    pub(crate) migrated_out: u64,
}

type Q = EventQueue<Ev>;

impl ServingSystem {
    /// Runs a full serving simulation and returns its results.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. a model's TP shard
    /// does not fit in VRAM).
    pub fn run(
        cfg: &AegaeonConfig,
        models: &[aegaeon_model::ModelSpec],
        trace: &Trace,
    ) -> RunResult {
        if cfg.audit {
            let (result, report) = Self::run_audited(cfg, models, trace);
            assert!(
                report.ok(),
                "invariant violation (reproduce with seed={} plan=\"{}\"):\n{report}",
                cfg.seed,
                cfg.faults,
            );
            result
        } else {
            Self::run_inner(cfg, models, trace, None).0
        }
    }

    /// Runs with the standard invariant auditor installed and returns the
    /// audit report alongside the results. The auditor is an observer: the
    /// [`RunResult`] is bit-identical to an unaudited run.
    pub fn run_audited(
        cfg: &AegaeonConfig,
        models: &[aegaeon_model::ModelSpec],
        trace: &Trace,
    ) -> (RunResult, AuditReport) {
        let auditor: Box<dyn Auditor + Send> = Box::new(InvariantAuditor::new());
        let (result, report) = Self::run_inner(cfg, models, trace, Some(auditor));
        (result, report.expect("auditor was installed"))
    }

    fn run_inner(
        cfg: &AegaeonConfig,
        models: &[aegaeon_model::ModelSpec],
        trace: &Trace,
        auditor: Option<Box<dyn Auditor + Send>>,
    ) -> (RunResult, Option<AuditReport>) {
        let mut session = crate::session::ServingSession::closed(cfg, models, trace);
        if let Some(a) = auditor {
            session.install_auditor(a);
        }
        session.step_until(SimTime::MAX);
        session.finish()
    }

    pub(crate) fn new(
        cfg: AegaeonConfig,
        models: &[aegaeon_model::ModelSpec],
        trace: Trace,
    ) -> ServingSystem {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut fabric: Fabric<Tag> = Fabric::new();
        let topo = ClusterTopology::build(&cfg.cluster, &mut fabric);
        let gpu_spec = cfg.cluster.nodes[0].gpu.clone();
        let deploys = build_deploys(models, &gpu_spec, cfg.tp, &mut rng);

        let usable = (gpu_spec.vram_bytes as f64 * cfg.vram_usable) as u64;
        let max_shard = deploys
            .iter()
            .map(|d| d.shard_bytes)
            .max()
            .expect("at least one model");
        assert!(
            max_shard + (2 << 30) <= usable,
            "model shard ({max_shard} B) does not fit in usable VRAM ({usable} B); raise TP"
        );
        // Reserve a prefetch region only if a second model still leaves a
        // workable KV region (the A10 case disables prefetching, §7.4).
        let min_kv = 2u64 << 30;
        // Multi-slot colocation (§8 extension): fall back to one slot when
        // the requested number of shards cannot share VRAM.
        let mut weight_slots = cfg.weight_slots.max(1);
        while weight_slots > 1 && usable < max_shard * weight_slots as u64 + min_kv {
            weight_slots -= 1;
        }
        // With 2+ slots the spare slot IS the prefetch target; a separate
        // prefetch region only exists in the single-slot configuration.
        let prefetch_enabled =
            cfg.opts.prefetch && (weight_slots > 1 || usable >= max_shard * 2 + min_kv);
        let prefetch_cap = if weight_slots == 1 && prefetch_enabled {
            max_shard
        } else {
            0
        };
        let kv_cap = usable - max_shard * weight_slots as u64 - prefetch_cap;

        let mk_gpu_kv = || {
            let mut kv = KvCache::new(KvCacheConfig {
                capacity_bytes: kv_cap,
                slab_bytes: cfg.slab_bytes,
                block_tokens: cfg.block_tokens,
            });
            for (i, d) in deploys.iter().enumerate() {
                kv.register_model(ModelId(i as u32), &d.spec);
            }
            kv
        };

        // Instances: TP-sized groups of consecutive GPUs; the first
        // `prefill_instances` groups prefill, the rest decode.
        let n_inst = cfg.instance_count();
        let mut groups: Vec<(Vec<GpuId>, u32)> = Vec::with_capacity(n_inst);
        let mut gpu_iter = topo.gpu_ids().collect::<Vec<_>>().into_iter();
        for _ in 0..n_inst {
            let gpus: Vec<GpuId> = (&mut gpu_iter).take(cfg.tp as usize).collect();
            let node = topo.gpu(gpus[0]).node.0;
            groups.push((gpus, node));
        }

        let warm = cfg.opts.component_reuse;
        let mut prefills = Vec::new();
        let mut decodes = Vec::new();
        for (i, (gpus, node)) in groups.into_iter().enumerate() {
            if i < cfg.prefill_instances {
                prefills.push(PrefillInst {
                    gpus,
                    node,
                    queue: PrefillQueue::new(),
                    scaler: Scaler::new(warm),
                    gpu_kv: mk_gpu_kv(),
                    parked: MoveList::new(),
                    active: None,
                    retry: false,
                    vram: BumpBuffer::new(max_shard + prefetch_cap),
                    weights_mark: None,
                    dead: false,
                });
            } else {
                decodes.push(DecodeInst {
                    gpus,
                    node,
                    work: WorkList::new(),
                    scaler: Scaler::new(warm),
                    gpu_kv: mk_gpu_kv(),
                    parked: MoveList::new(),
                    round: VecDeque::new(),
                    turn: None,
                    turn_gen: 0,
                    dead: false,
                });
            }
        }

        // Node state: CPU caches pre-warmed with as many checkpoints as fit.
        let mut nodes = Vec::new();
        for _ in 0..topo.node_count() {
            let mut cpu_kv = KvCache::new(KvCacheConfig {
                capacity_bytes: cfg.cpu_kv_bytes,
                slab_bytes: cfg.slab_bytes,
                block_tokens: cfg.block_tokens,
            });
            let mut model_cache = ModelCache::new(cfg.model_cache_bytes);
            for (i, d) in deploys.iter().enumerate() {
                cpu_kv.register_model(ModelId(i as u32), &d.spec);
                let _ = model_cache.insert(i as u32, d.spec.weight_bytes());
            }
            nodes.push(NodeState {
                cpu_kv,
                cpu_parked: MoveList::new(),
                model_cache,
                offload_retry: Vec::new(),
            });
        }

        let reqs = trace
            .requests
            .iter()
            .map(|r| {
                let mut rs = ReqState::new(r.arrival(), r.input_tokens, r.output_tokens);
                rs.session = r.session;
                rs.turn_index = r.turn_index;
                // A turn always carries at least one fresh token; clamp a
                // malformed prefix rather than underflowing delta math.
                rs.prefix_tokens = r.prefix_tokens.min(r.input_tokens.saturating_sub(1));
                rs
            })
            .collect();
        let arrivals_left = trace.len();
        let hard_stop = trace.horizon + cfg.drain_window;
        let schedule = if cfg.trace_schedule {
            TraceLog::enabled()
        } else {
            TraceLog::disabled()
        };
        let mut tel = Telemetry::new(&cfg.telemetry);
        let tm = TelIds::register(&mut tel.metrics, deploys.len());
        if tel.is_enabled() {
            // The SLO observatory and the attribution ledger are sized by
            // the host (model count, instance roster) after construction.
            tel.slo =
                SloObservatory::new(deploys.len(), cfg.telemetry.slo_window.as_nanos().max(1));
            for i in 0..prefills.len() {
                tel.attrib.instance(&format!("p{i}"));
            }
            for i in 0..decodes.len() {
                tel.attrib.instance(&format!("d{i}"));
            }
        }
        let req_tel = if tel.is_enabled() {
            vec![ReqTel::EMPTY; trace.len()]
        } else {
            Vec::new()
        };
        let meta = MetaStore::new(cfg.proxy_latency, cfg.failover_latency / 2);
        let faults = cfg.faults.materialize(
            cfg.seed,
            hard_stop.as_secs_f64(),
            cfg.prefill_instances as u32,
            (n_inst - cfg.prefill_instances) as u32,
            fabric.link_count() as u32,
            topo.node_count() as u32,
        );
        let link_degrade_depth = vec![0; fabric.link_count()];
        let stage_oom_depth = vec![0; topo.node_count()];
        ServingSystem {
            cfg,
            fabric,
            topo,
            deploys,
            prefills,
            decodes,
            nodes,
            reqs,
            trace,
            rng,
            ready: VecDeque::new(),
            multis: FxHashMap::default(),
            next_multi: 0,
            prefetch_enabled,
            weight_slots,
            instant_switches: 0,
            meta,
            faults,
            link_degrade_depth,
            stage_oom_depth,
            auditor: None,
            breakdown: aegaeon_metrics::BreakdownAcc::new(),
            scale_latencies: Vec::new(),
            frag: FragSampler::new(),
            util_samples: Vec::new(),
            schedule,
            tel,
            tm,
            req_tel,
            tbt_scratch: Vec::new(),
            completed: 0,
            arrivals_left,
            swaps: 0,
            scale_count: 0,
            prefetch_hits: 0,
            sessions: SessionBook::new(),
            prefix_hits: 0,
            prefill_tokens_reused: 0,
            prefill_tokens_recomputed: 0,
            ticks_live: false,
            tick_gen: 0,
            hard_stop,
            tap: Vec::new(),
            tap_enabled: false,
            shard_mode: false,
            outbox: Vec::new(),
            migrated_out: 0,
        }
    }

    pub(crate) fn start(&mut self, q: &mut Q) {
        for (i, r) in self.trace.requests.iter().enumerate() {
            q.schedule_at(r.arrival(), Ev::Arrive(i as u32));
        }
        for i in 0..self.faults.len() {
            let f = self.faults[i];
            let ev = match f.kind {
                FaultKind::Crash { .. } => Ev::Fail(i as u32),
                _ => Ev::FaultStart(i as u32),
            };
            q.schedule_at(SimTime::from_secs_f64(f.at), ev);
        }
        self.ensure_ticks(q);
    }

    /// Admits one externally injected request at simulated instant `stamp`
    /// (strictly increasing and strictly in the future — the injection port
    /// guarantees both) and returns the id it was assigned. Open-mode
    /// sessions grow the trace in place, so a later offline replay of the
    /// recorded trace walks an identical data structure.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit_live(
        &mut self,
        stamp: SimTime,
        model: ModelId,
        input_tokens: u32,
        output_tokens: u32,
        session: SessionId,
        turn_index: u32,
        prefix_tokens: u32,
        q: &mut Q,
    ) -> RequestId {
        let idx = self.trace.requests.len();
        let id = RequestId(idx as u64);
        self.trace.requests.push(Request {
            id,
            model,
            arrival_ns: stamp.as_nanos(),
            input_tokens,
            output_tokens,
            session,
            turn_index,
            prefix_tokens,
        });
        // The horizon only grows; the fault schedule and hard stop were
        // materialized from the construction-time horizon, so live and
        // replay sessions see identical fault plans.
        if stamp > self.trace.horizon {
            self.trace.horizon = stamp;
        }
        let mut rs = ReqState::new(stamp, input_tokens, output_tokens);
        rs.session = session;
        rs.turn_index = turn_index;
        rs.prefix_tokens = prefix_tokens.min(input_tokens.saturating_sub(1));
        self.reqs.push(rs);
        if self.tel.is_enabled() {
            self.req_tel.push(ReqTel::EMPTY);
        }
        self.arrivals_left += 1;
        q.schedule_at(stamp, Ev::Arrive(idx as u32));
        id
    }

    pub(crate) fn live(&self) -> bool {
        self.arrivals_left > 0 || self.completed + (self.migrated_out as usize) < self.trace.len()
    }

    fn ensure_ticks(&mut self, q: &mut Q) {
        if !self.ticks_live && self.live() {
            self.ticks_live = true;
            // A fresh generation invalidates any idle-stopped tick that is
            // still sitting in the queue; without this, an open-mode session
            // that goes idle and then admits a new arrival would fork a
            // second tick stream.
            self.tick_gen += 1;
            let gen = self.tick_gen;
            q.schedule_after(self.cfg.daemon_period, Ev::Daemon { gen });
            q.schedule_after(self.cfg.sample_period, Ev::Sample { gen });
        }
    }

    pub(crate) fn handle(&mut self, ev: Ev, q: &mut Q) {
        match ev {
            Ev::Fabric(fe) => {
                let cs = self.fabric.advance(fe, &mut Lift::new(q, Ev::Fabric));
                self.ready.extend(cs);
            }
            Ev::Arrive(idx) => {
                self.arrivals_left -= 1;
                let rid = self.trace.requests[idx as usize].id;
                self.tel_req_arrive(rid, q.now());
                if self.meta.stalled(q.now()) {
                    // Proxy metadata path is stalled: retry with backoff
                    // instead of dispatching against stale state.
                    let wait = self.meta.retry_backoff(1);
                    q.schedule_after(
                        wait,
                        Ev::Retry {
                            req: idx,
                            attempt: 1,
                        },
                    );
                } else {
                    q.schedule_after(self.cfg.proxy_latency, Ev::DispatchPrefill { idx });
                }
                self.ensure_ticks(q);
            }
            Ev::Retry { req, attempt } => {
                self.tel.metrics.inc(self.tm.c_retries, 1);
                if self.tel.is_enabled() {
                    let i = self.trace.requests[req as usize].id.0 as usize;
                    let cause = self.req_tel[i].root;
                    self.tel.spans.instant(
                        || format!("req{i}"),
                        SpanKind::Retry,
                        q.now(),
                        cause,
                        || format!("retry#{attempt}"),
                    );
                }
                if self.meta.stalled(q.now()) {
                    let wait = self.meta.retry_backoff(attempt + 1);
                    q.schedule_after(
                        wait,
                        Ev::Retry {
                            req,
                            attempt: attempt + 1,
                        },
                    );
                } else {
                    q.schedule_after(self.cfg.proxy_latency, Ev::DispatchPrefill { idx: req });
                }
            }
            Ev::DispatchPrefill { idx } => self.dispatch_prefill_req(idx as usize, q),
            Ev::Daemon { gen } => {
                // Stale generations (a tick queued before an idle stop) are
                // dropped entirely: no side effects, no reschedule.
                if gen == self.tick_gen {
                    self.daemon(q);
                    if self.live() {
                        q.schedule_after(self.cfg.daemon_period, Ev::Daemon { gen });
                    } else {
                        self.ticks_live = false;
                    }
                }
            }
            Ev::Sample { gen } => {
                if gen == self.tick_gen {
                    self.sample(q);
                    if self.live() {
                        q.schedule_after(self.cfg.sample_period, Ev::Sample { gen });
                    } else {
                        self.ticks_live = false;
                    }
                }
            }
            Ev::Fail(i) => self.on_fail(i as usize, q),
            Ev::Failover(i) => self.on_failover(i as usize, q),
            Ev::FaultStart(i) => self.on_fault_start(i as usize, q),
            Ev::FaultEnd(i) => self.on_fault_end(i as usize, q),
        }
        self.drain(q);
    }

    fn drain(&mut self, q: &mut Q) {
        while let Some(c) = self.ready.pop_front() {
            if let Completion::Op { tag, .. } = c {
                self.on_tag(tag, q);
            }
        }
    }

    fn submit(&mut self, stream: aegaeon_gpu::StreamId, op: StreamOp<Tag>, q: &mut Q) {
        let cs = self
            .fabric
            .submit(stream, op, &mut Lift::new(q, Ev::Fabric));
        self.ready.extend(cs);
    }

    fn multi(&mut self, parts: u32, inner: Tag) -> Tag {
        if parts <= 1 {
            return inner;
        }
        let id = self.next_multi;
        self.next_multi += 1;
        self.multis.insert(id, (parts, inner));
        Tag::Part(id)
    }

    fn inst_gpus(&self, at: InstRef) -> &[GpuId] {
        match at.kind {
            InstKind::Prefill => &self.prefills[at.idx as usize].gpus,
            InstKind::Decode => &self.decodes[at.idx as usize].gpus,
        }
    }

    fn inst_node(&self, at: InstRef) -> u32 {
        match at.kind {
            InstKind::Prefill => self.prefills[at.idx as usize].node,
            InstKind::Decode => self.decodes[at.idx as usize].node,
        }
    }

    fn scaler_mut(&mut self, at: InstRef) -> &mut Scaler {
        match at.kind {
            InstKind::Prefill => &mut self.prefills[at.idx as usize].scaler,
            InstKind::Decode => &mut self.decodes[at.idx as usize].scaler,
        }
    }

    fn scaler(&self, at: InstRef) -> &Scaler {
        match at.kind {
            InstKind::Prefill => &self.prefills[at.idx as usize].scaler,
            InstKind::Decode => &self.decodes[at.idx as usize].scaler,
        }
    }

    fn primary(&self, at: InstRef) -> GpuId {
        self.inst_gpus(at)[0]
    }

    fn inst_dead(&self, at: InstRef) -> bool {
        match at.kind {
            InstKind::Prefill => self.prefills[at.idx as usize].dead,
            InstKind::Decode => self.decodes[at.idx as usize].dead,
        }
    }

    // ----- Telemetry hooks (observer only) ------------------------------
    //
    // Every hook is a single branch when telemetry is off; label closures
    // never run. None of them touches the event queue, the RNG, or any
    // state the simulation reads, so results are bit-identical either way
    // (proven by the differential test in tests/telemetry.rs).

    /// Computes every gauge and snapshots the registry at boundary `at`.
    pub(crate) fn tel_poll(&mut self, at: SimTime) {
        let pq: usize = self.prefills.iter().map(|p| p.queue.pending()).sum();
        let dw: usize = self.decodes.iter().map(|d| d.work.len()).sum();
        let batches: usize = self.decodes.iter().map(|d| d.work.iter().count()).sum();
        let vram: u64 = self
            .prefills
            .iter()
            .map(|p| p.gpu_kv.used_bytes())
            .chain(self.decodes.iter().map(|d| d.gpu_kv.used_bytes()))
            .sum();
        let cpu: u64 = self.nodes.iter().map(|n| n.cpu_kv.used_bytes()).sum();
        let inflight: f64 = (0..self.fabric.link_count())
            .map(|l| self.fabric.link(LinkId(l as u32)).bytes_in_flight())
            .sum();
        let mut models: Vec<ModelId> = self
            .prefills
            .iter()
            .map(|p| &p.scaler)
            .chain(self.decodes.iter().map(|d| &d.scaler))
            .filter_map(|s| s.current)
            .collect();
        models.sort_unstable_by_key(|m| m.0);
        models.dedup();
        for mi in 0..self.tm.g_slo_attain.len() {
            let v = self.tel.slo.attainment(mi);
            self.tel.metrics.set(self.tm.g_slo_attain[mi], v);
        }
        let m = &mut self.tel.metrics;
        m.set_counter(self.tm.c_completed, self.completed as u64);
        m.set(self.tm.g_prefill_queue_depth, pq as f64);
        m.set(self.tm.g_decode_work, dw as f64);
        m.set(self.tm.g_decode_batches, batches as f64);
        m.set(self.tm.g_vram_kv_used, vram as f64);
        m.set(self.tm.g_cpu_kv_used, cpu as f64);
        m.set(self.tm.g_link_bytes_in_flight, inflight);
        m.set(self.tm.g_active_models, models.len() as f64);
        m.sample(at);
    }

    /// Opens the request's whole-lifetime root span at arrival.
    fn tel_req_arrive(&mut self, req: RequestId, now: SimTime) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let model = self.trace.requests[i].model;
        let id = self.tel.spans.start(
            || format!("req{i}"),
            SpanKind::Request,
            now,
            SpanId::NONE,
            SpanId::NONE,
            || format!("req{i}:{model}"),
        );
        self.req_tel[i].root = id;
    }

    /// Opens a new phase span under the request's root, force-closing any
    /// previous phase first (robust across failover and preemption, where
    /// phases end at re-dispatch rather than at a clean boundary). Consumes
    /// the pending scheduler-decision instant as the cause link.
    fn tel_begin_phase(
        &mut self,
        req: RequestId,
        kind: SpanKind,
        label: &'static str,
        now: SimTime,
    ) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let rt = self.req_tel[i];
        if !rt.phase.is_none() {
            self.tel.spans.end(rt.phase, now);
        }
        let id = self
            .tel
            .spans
            .start(|| format!("req{i}"), kind, now, rt.root, rt.cause, || label);
        self.req_tel[i].phase = id;
        self.req_tel[i].cause = SpanId::NONE;
    }

    /// Ends the request's open phase span, if any.
    fn tel_end_phase(&mut self, req: RequestId, now: SimTime) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let id = std::mem::replace(&mut self.req_tel[i].phase, SpanId::NONE);
        self.tel.spans.end(id, now);
    }

    /// Ends the request's phase and root spans (completion) and feeds the
    /// SLO observatory: retirement is the only moment all token timings are
    /// final, so the per-model sketches, deadline counts and windowed
    /// series are all fed from this one site.
    fn tel_req_done(&mut self, req: RequestId, now: SimTime) {
        if !self.tel.is_enabled() {
            return;
        }
        self.tel_end_phase(req, now);
        let i = req.0 as usize;
        let id = std::mem::replace(&mut self.req_tel[i].root, SpanId::NONE);
        self.tel.spans.end(id, now);

        let model = self.trace.requests[i].model;
        let slo = SloSpec::paper_default();
        let rs = &self.reqs[i];
        let arrival = rs.arrival;
        let mut met = 0u64;
        let mut prev: Option<SimTime> = None;
        self.tbt_scratch.clear();
        for (k, &t) in rs.token_times.iter().enumerate() {
            if t <= slo.token_deadline(arrival, k as u32) {
                met += 1;
            }
            if let Some(p) = prev {
                self.tbt_scratch.push(t.saturating_since(p).as_secs_f64());
            }
            prev = Some(t);
        }
        let ttft = rs
            .token_times
            .first()
            .map_or(f64::NAN, |&t| t.saturating_since(arrival).as_secs_f64());
        let tokens = rs.token_times.len() as u64;
        let mi = model.0 as usize;
        self.tel.metrics.observe_sketch(self.tm.s_ttft[mi], ttft);
        for k in 0..self.tbt_scratch.len() {
            let v = self.tbt_scratch[k];
            self.tel.metrics.observe_sketch(self.tm.s_tbt[mi], v);
        }
        self.tel
            .slo
            .observe_request(now.as_nanos(), model.0, ttft, &self.tbt_scratch, tokens, met);
        // Session turns also feed the agentic lens. Think gaps can never
        // pollute these TBT quantiles: each turn is its own request, so the
        // inter-token gaps above are all intra-turn by construction.
        let rs = &self.reqs[i];
        if rs.session.is_some() {
            let turn_latency = now.saturating_since(rs.arrival).as_secs_f64();
            self.tel
                .metrics
                .observe_sketch(self.tm.s_session_turn, turn_latency);
            self.tel.slo.observe_turn(
                now.as_nanos(),
                model.0,
                rs.turn_index,
                turn_latency,
                rs.prefix_hit,
            );
        }
    }

    /// Records a scheduler-decision instant and remembers it as the cause
    /// for the request's next phase span.
    fn tel_decision<S: Into<String>>(
        &mut self,
        req: RequestId,
        now: SimTime,
        label: impl FnOnce() -> S,
    ) {
        if !self.tel.is_enabled() {
            return;
        }
        let id =
            self.tel
                .spans
                .instant(|| "scheduler", SpanKind::Decision, now, SpanId::NONE, label);
        self.req_tel[req.0 as usize].cause = id;
    }

    /// Opens a KV-transfer span on the request's `kv-out` / `kv-in`
    /// subtrack (separate subtracks: an offload and the matching swap-in
    /// can overlap under §5.3 rule ❷).
    fn tel_kv_start(&mut self, req: RequestId, now: SimTime, out: bool, inst: u32) {
        if !self.tel.is_enabled() {
            return;
        }
        // A crash can strand an in-flight transfer whose completion tag
        // never fires; the replacement transfer closes it here (and settles
        // its partial time in the attribution ledger).
        self.tel_kv_end(req, now, out);
        let i = req.0 as usize;
        let root = self.req_tel[i].root;
        let dir = if out { "kv-out" } else { "kv-in" };
        // Cause, not parent: a transfer stranded on a slow link can outlive
        // the root span when the request re-prefills and completes first.
        let id = self.tel.spans.start(
            || format!("req{i}/{dir}"),
            SpanKind::KvTransfer,
            now,
            SpanId::NONE,
            root,
            || dir,
        );
        let rt = &mut self.req_tel[i];
        if out {
            rt.kv_out = id;
            rt.kv_out_inst = inst;
            rt.kv_out_start = now;
        } else {
            rt.kv_in = id;
            rt.kv_in_inst = inst;
            rt.kv_in_start = now;
        }
    }

    /// Closes the request's open KV-transfer span and books its wall time
    /// against the issuing instance in the attribution ledger.
    fn tel_kv_end(&mut self, req: RequestId, now: SimTime, out: bool) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let (id, inst, start) = {
            let rt = &mut self.req_tel[i];
            if out {
                (
                    std::mem::replace(&mut rt.kv_out, SpanId::NONE),
                    std::mem::replace(&mut rt.kv_out_inst, u32::MAX),
                    rt.kv_out_start,
                )
            } else {
                (
                    std::mem::replace(&mut rt.kv_in, SpanId::NONE),
                    std::mem::replace(&mut rt.kv_in_inst, u32::MAX),
                    rt.kv_in_start,
                )
            }
        };
        self.tel.spans.end(id, now);
        if inst != u32::MAX {
            let model = self.trace.requests[i].model;
            let kind = if out {
                CostKind::KvSwapOut
            } else {
                CostKind::KvSwapIn
            };
            self.tel
                .attrib
                .add(inst, model.0, kind, now.saturating_since(start).as_secs_f64());
        }
    }

    /// Dense attribution-ledger id of an instance (prefills first, then
    /// decodes — the registration order used at construction).
    #[inline]
    fn ledger_inst(&self, at: InstRef) -> u32 {
        match at.kind {
            InstKind::Prefill => at.idx,
            InstKind::Decode => self.prefills.len() as u32 + at.idx,
        }
    }

    // ----- Fault tolerance (Fig. 5 status sync) -------------------------

    /// An instance process dies: it stops serving instantly; the proxy
    /// learns about it one heartbeat later (`Ev::Failover`).
    fn on_fail(&mut self, i: usize, q: &mut Q) {
        self.tel.metrics.inc(self.tm.c_chaos_crashes, 1);
        let FaultKind::Crash { kind, idx } = self.faults[i].kind else {
            unreachable!("Ev::Fail scheduled for a non-crash fault");
        };
        // A crash of an already-dead instance (back-to-back failures) is a
        // no-op: there is no process left to kill, and re-running failover
        // would double-recover the stranded requests.
        if self.inst_dead(InstRef { kind, idx }) {
            return;
        }
        match kind {
            InstKind::Prefill => self.prefills[idx as usize].dead = true,
            InstKind::Decode => self.decodes[idx as usize].dead = true,
        }
        // The store stops seeing heartbeats; the proxy presumes death after
        // the detection window and recovers the stranded requests.
        self.meta.confirm_dead(InstRef { kind, idx });
        q.schedule_after(self.meta.detection_latency(), Ev::Failover(i as u32));
    }

    /// The proxy's status sync recovers every request stranded on the dead
    /// instance: requests whose KV survives in the unified CPU cache are
    /// re-dispatched to another decoding instance; requests whose GPU-side
    /// state was lost are re-prefilled from their full context.
    fn on_failover(&mut self, i: usize, q: &mut Q) {
        let FaultKind::Crash { kind, idx } = self.faults[i].kind else {
            unreachable!("Ev::Failover scheduled for a non-crash fault");
        };
        let mut stranded: Vec<RequestId> = Vec::new();
        match kind {
            InstKind::Prefill => {
                let p = &mut self.prefills[idx as usize];
                if let Some(r) = p.active.take() {
                    stranded.push(r);
                }
                while let Some((_, r)) = p.queue.pop_request() {
                    stranded.push(r);
                }
            }
            InstKind::Decode => {
                let d = &mut self.decodes[idx as usize];
                d.turn = None;
                d.round.clear();
                for b in d.work.iter() {
                    stranded.extend(b.reqs.iter().copied());
                }
                d.work = WorkList::new();
            }
        }
        for req in stranded {
            // A request pinned to this dead decoder by an unabsorbed prefix
            // claim lost that prefix with the instance: its delta-only KV
            // (wherever it sits) is unusable, so recompute from scratch.
            let lost_claim = kind == InstKind::Decode
                && matches!(
                    self.reqs[req.0 as usize].prefix_claim,
                    Some(PrefixClaim { src: SessPlace::DecodeGpu(h), .. }) if h == idx
                );
            let rs = &mut self.reqs[req.0 as usize];
            if rs.is_done() || rs.migrated {
                continue;
            }
            rs.kv_ready = false;
            rs.swapin_inflight = false;
            rs.decode_inst = None;
            if lost_claim {
                self.abandon_claim_and_recompute(req, q);
                continue;
            }
            let rs = &mut self.reqs[req.0 as usize];
            match rs.kv {
                KvPlace::Cpu { .. } if rs.phase == Phase::Decode => {
                    // KV survives in host memory: rejoin another decoder.
                    self.dispatch_decode_req(req, q);
                }
                _ => {
                    // GPU-side state lost: re-prefill the full context.
                    rs.kv = KvPlace::None;
                    rs.phase = Phase::Prefill;
                    self.route_prefill(req, q);
                }
            }
        }
        if kind == InstKind::Decode {
            // Retained prefixes on the dead instance died with its VRAM;
            // drop their book entries (no KV to free — the dead cache keeps
            // its stale holdings, which the audit knows to expect).
            for (_, _e) in self.sessions.drain_place(SessPlace::DecodeGpu(idx)) {
                self.tel.metrics.inc(self.tm.c_sess_evicted, 1);
            }
            // Claims against the dead holder whose owners were not in its
            // work list (still prefilling, queued, or awaiting offload
            // retry): flag them so the next prefill touchpoint recomputes.
            for i in 0..self.reqs.len() {
                let claims_dead = matches!(
                    self.reqs[i].prefix_claim,
                    Some(PrefixClaim { src: SessPlace::DecodeGpu(h), .. }) if h == idx
                );
                if !claims_dead || self.reqs[i].is_done() || self.reqs[i].migrated {
                    continue;
                }
                let sess = self.reqs[i].session;
                let rs = &mut self.reqs[i];
                rs.prefix_claim = None;
                rs.prefix_hit = false;
                rs.prefix_lost = true;
                self.sessions.clear_claim(sess);
            }
        }
    }

    /// Hands a request off to the shard coordinator (sharded runs only):
    /// the shard has lost an entire tier, so the request is re-served from
    /// scratch on a peer shard after the failover detection window. The
    /// request is locally resolved — it never completes here, its outcome
    /// slot is superseded by the destination shard's at merge time, and any
    /// KV footprint it left behind stays with the functionally lost tier.
    fn migrate_out(&mut self, req: RequestId, now: SimTime) {
        let i = req.0 as usize;
        {
            let rs = &mut self.reqs[i];
            debug_assert!(!rs.migrated, "request {i} migrated twice");
            rs.migrated = true;
            rs.kv_ready = false;
            rs.swapin_inflight = false;
            rs.decode_inst = None;
        }
        let r = &self.trace.requests[i];
        self.outbox.push(crate::shard::Handoff {
            emitted: now,
            model: r.model,
            input_tokens: r.input_tokens,
            output_tokens: r.output_tokens,
            session: r.session,
            turn_index: r.turn_index,
            prefix_tokens: r.prefix_tokens,
            local_idx: i as u32,
        });
        self.migrated_out += 1;
    }

    // ----- Windowed chaos faults ----------------------------------------

    /// A windowed fault activates: link degradation and staging OOM count
    /// nesting depth (overlapping windows extend, not double-apply); proxy
    /// stalls are handed to the metadata store, whose window self-expires.
    fn on_fault_start(&mut self, i: usize, q: &mut Q) {
        self.tel.metrics.inc(self.tm.c_chaos_windows, 1);
        let f = self.faults[i];
        let until = SimTime::from_secs_f64(f.until);
        match f.kind {
            FaultKind::Crash { .. } => unreachable!("crashes route through Ev::Fail"),
            FaultKind::LinkDegrade { link, factor } => {
                let l = link as usize;
                self.link_degrade_depth[l] += 1;
                if self.link_degrade_depth[l] == 1 {
                    self.fabric
                        .degrade_link(LinkId(link), factor, &mut Lift::new(q, Ev::Fabric));
                }
                q.schedule_at(until, Ev::FaultEnd(i as u32));
            }
            FaultKind::StageOom { node } => {
                self.stage_oom_depth[node as usize] += 1;
                q.schedule_at(until, Ev::FaultEnd(i as u32));
            }
            FaultKind::ProxyStall => self.meta.begin_stall(until),
        }
    }

    /// A windowed fault clears; the resource recovers once the last
    /// overlapping window ends.
    fn on_fault_end(&mut self, i: usize, q: &mut Q) {
        match self.faults[i].kind {
            FaultKind::LinkDegrade { link, .. } => {
                let l = link as usize;
                self.link_degrade_depth[l] -= 1;
                if self.link_degrade_depth[l] == 0 {
                    self.fabric
                        .restore_link(LinkId(link), &mut Lift::new(q, Ev::Fabric));
                }
            }
            FaultKind::StageOom { node } => self.stage_oom_depth[node as usize] -= 1,
            FaultKind::Crash { .. } | FaultKind::ProxyStall => {
                unreachable!("no FaultEnd is scheduled for this kind")
            }
        }
    }

    /// Submits the same compute to every GPU of the instance; the inner tag
    /// fires when all shards finish.
    fn compute_all(&mut self, at: InstRef, dur: SimDur, inner: Tag, q: &mut Q) {
        let gpus = self.inst_gpus(at).to_vec();
        let tag = self.multi(gpus.len() as u32, inner);
        for g in gpus {
            let s = self.topo.gpu(g).default_stream;
            self.submit(
                s,
                StreamOp::Compute {
                    dur,
                    tag: tag.clone(),
                },
                q,
            );
        }
    }

    // ----- Tag dispatch -------------------------------------------------

    fn on_tag(&mut self, tag: Tag, q: &mut Q) {
        match tag {
            Tag::Part(id) => {
                let done = {
                    let e = self.multis.get_mut(&id).expect("live multi");
                    e.0 -= 1;
                    e.0 == 0
                };
                if done {
                    let (_, inner) = self.multis.remove(&id).expect("live multi");
                    self.on_tag(inner, q);
                }
            }
            Tag::PrefillDone { inst, req } => self.on_prefill_done(inst as usize, req, q),
            Tag::ScaleStage { at, seq } => self.on_scale_stage(at, seq, q),
            Tag::PrefetchDone { at, model, seq } => self.on_prefetch_done(at, model, seq, q),
            Tag::DecodeStep { inst, turn } => self.on_decode_step(inst as usize, turn, q),
            Tag::KvIn { inst, req, turn } => self.on_kv_in(inst as usize, req, turn, q),
            // The offload copy's completion only matters to telemetry (the
            // daemon reclaims its blocks via the recorded fabric event).
            Tag::KvOut { req } => self.tel_kv_end(req, q.now(), true),
            Tag::Noop => {}
        }
    }

    // ----- Prefill path -------------------------------------------------

    fn dispatch_prefill_req(&mut self, idx: usize, q: &mut Q) {
        let req = self.trace.requests[idx].id;
        self.route_prefill(req, q);
    }

    // ----- Agentic sessions: prefix claims & retention -------------------

    /// Frees the KV retained under a session's handle at `e.place`. Stale
    /// holdings on dead instances died with their VRAM and are skipped; a
    /// CPU holding whose spill copy is still in flight is parked on the
    /// node's move list instead of freed (§5.3 rule ❸).
    fn free_sess_entry(&mut self, sess: SessionId, e: &SessEntry) {
        let h = SessionBook::handle(sess);
        match e.place {
            SessPlace::DecodeGpu(di) => {
                let di = di as usize;
                if !self.decodes[di].dead && self.decodes[di].gpu_kv.holds(h) {
                    self.decodes[di].gpu_kv.free(h);
                }
            }
            SessPlace::Cpu(node) => {
                let node = node as usize;
                if !self.nodes[node].cpu_kv.holds(h) {
                    return;
                }
                let (shape, blocks) = self.nodes[node].cpu_kv.take(h);
                match e.guard {
                    Some(ev) if !self.fabric.query_event(ev) => {
                        self.nodes[node].cpu_parked.park(ev, vec![(shape, blocks)]);
                    }
                    _ => self.nodes[node].cpu_kv.free_blocks(shape, &blocks),
                }
            }
        }
    }

    /// Tries to claim the session's retained prefix for `req` at prefill
    /// routing time. On success the book entry becomes the request's
    /// `prefix_claim`; the handle's blocks stay where they are until the
    /// claimant absorbs them (at swap-in for GPU prefixes, at offload for
    /// spilled ones).
    fn try_claim_prefix(&mut self, req: RequestId) {
        if !self.cfg.session_affinity {
            return;
        }
        let i = req.0 as usize;
        {
            let rs = &self.reqs[i];
            // Crash-recovered requests (produced > 0) rebuild their full
            // context claimless.
            if !rs.session.is_some()
                || rs.prefix_tokens == 0
                || rs.produced > 0
                || rs.prefix_claim.is_some()
                || rs.prefix_lost
            {
                return;
            }
        }
        let sess = self.reqs[i].session;
        if self.sessions.is_claimed(sess) {
            return; // an overlapping turn already holds the prefix
        }
        let model = self.trace.requests[i].model;
        let Some(e) = self.sessions.get(sess).copied() else {
            return;
        };
        if e.model != model {
            return; // a DAG fan-out child on another model shares no KV
        }
        if e.tokens > self.reqs[i].prefix_tokens {
            // The retained KV outgrew this turn's shared prefix (an
            // out-of-order turn); partial use is impossible, so evict.
            let e = self.sessions.remove(sess).expect("entry just read");
            self.free_sess_entry(sess, &e);
            self.tel.metrics.inc(self.tm.c_sess_evicted, 1);
            return;
        }
        match e.place {
            SessPlace::DecodeGpu(di) if self.decodes[di as usize].dead => {
                // The holder died; its VRAM (and this entry) are gone.
                self.sessions.remove(sess);
                self.tel.metrics.inc(self.tm.c_sess_evicted, 1);
            }
            SessPlace::Cpu(_) if e.guard.is_some_and(|ev| !self.fabric.query_event(ev)) => {
                // Spill copy still in flight: a miss, but keep the entry.
            }
            place => {
                self.sessions.remove(sess);
                self.sessions.claim(sess, req);
                let rs = &mut self.reqs[i];
                rs.prefix_claim = Some(PrefixClaim {
                    tokens: e.tokens,
                    src: place,
                });
                rs.prefix_hit = true;
                self.tel.metrics.inc(self.tm.c_sess_affinity_routed, 1);
            }
        }
    }

    /// Returns an unabsorbed claim to the book (routing fell back, or a
    /// single-token turn retired without reaching a merge point). Does not
    /// touch `prefix_hit`: the caller knows whether the claim sized a
    /// prefill before coming back.
    fn release_claim(&mut self, req: RequestId, now: SimTime) {
        let i = req.0 as usize;
        let Some(c) = self.reqs[i].prefix_claim.take() else {
            return;
        };
        let sess = self.reqs[i].session;
        self.sessions.clear_claim(sess);
        let e = SessEntry {
            model: self.trace.requests[i].model,
            tokens: c.tokens,
            place: c.src,
            retained_at: now,
            guard: None,
        };
        if self.sessions.get(sess).is_some() {
            // A newer prefix appeared meanwhile; the handle must stay
            // unique, so the older KV goes.
            self.free_sess_entry(sess, &e);
            self.tel.metrics.inc(self.tm.c_sess_evicted, 1);
        } else {
            self.sessions.insert(sess, e);
        }
    }

    /// Abandons an unabsorbed claim whose holder died: the delta-only KV
    /// computed against it is discarded and the request re-prefills its
    /// full context (the chaos recovery path).
    fn abandon_claim_and_recompute(&mut self, req: RequestId, q: &mut Q) {
        let i = req.0 as usize;
        let sess = self.reqs[i].session;
        self.reqs[i].prefix_claim = None;
        self.reqs[i].prefix_hit = false;
        self.sessions.clear_claim(sess);
        if let KvPlace::Cpu { node } = self.reqs[i].kv {
            let node = node as usize;
            if self.nodes[node].cpu_kv.holds(req) {
                let (shape, blocks) = self.nodes[node].cpu_kv.take(req);
                match self.reqs[i].offload_event {
                    // The offload copy may still be writing these blocks.
                    Some(ev) if !self.fabric.query_event(ev) => {
                        self.nodes[node].cpu_parked.park(ev, vec![(shape, blocks)]);
                    }
                    _ => self.nodes[node].cpu_kv.free_blocks(shape, &blocks),
                }
            }
        }
        // KvPlace::Gpu can only mean the dead holder here (claimed requests
        // are pinned to it), whose cache died with it: nothing to free.
        let rs = &mut self.reqs[i];
        rs.kv = KvPlace::None;
        rs.kv_ready = false;
        rs.swapin_inflight = false;
        rs.offload_event = None;
        rs.phase = Phase::Prefill;
        self.tel.metrics.inc(self.tm.c_sess_affinity_fallback, 1);
        self.route_prefill(req, q);
    }

    /// Clears any outstanding claim before a request leaves this shard,
    /// returning the prefix to the book when its holder is still alive.
    fn unclaim_for_migration(&mut self, req: RequestId, now: SimTime) {
        let i = req.0 as usize;
        let Some(c) = self.reqs[i].prefix_claim else {
            return;
        };
        let holder_dead =
            matches!(c.src, SessPlace::DecodeGpu(di) if self.decodes[di as usize].dead);
        if holder_dead {
            let sess = self.reqs[i].session;
            self.reqs[i].prefix_claim = None;
            self.reqs[i].prefix_hit = false;
            self.sessions.clear_claim(sess);
        } else {
            self.release_claim(req, now);
            self.reqs[i].prefix_hit = false;
        }
    }

    /// Retires a finished decode request's KV: frees it, unless session
    /// affinity retains it under the session's handle — resident on this
    /// GPU when the unified cache keeps ample headroom (the same 2× rule as
    /// the KV-residency extension), spilled to the node's CPU cache via a
    /// real d2h copy otherwise.
    fn retire_decode_kv(&mut self, di: usize, req: RequestId, q: &mut Q) {
        let i = req.0 as usize;
        let sess = self.reqs[i].session;
        let retain = self.cfg.session_affinity
            && sess.is_some()
            && self.reqs[i].prefix_claim.is_none()
            && !self.sessions.is_claimed(sess);
        if !retain {
            self.decodes[di].gpu_kv.free(req);
            self.reqs[i].kv = KvPlace::None;
            self.reqs[i].kv_ready = false;
            return;
        }
        let now = q.now();
        let model = self.trace.requests[i].model;
        let tokens = self.decodes[di].gpu_kv.tokens_of(req);
        // The handle must stay unique: retire any prior retention first.
        if let Some(old) = self.sessions.remove(sess) {
            self.free_sess_entry(sess, &old);
            self.tel.metrics.inc(self.tm.c_sess_evicted, 1);
        }
        let h = SessionBook::handle(sess);
        if self.decodes[di].gpu_kv.token_capacity(model) > tokens as u64 * 2 {
            // Keep the conversation KV resident across the think gap: pure
            // relabeling, no bytes move.
            self.decodes[di].gpu_kv.rekey(req, h);
            self.sessions.insert(
                sess,
                SessEntry {
                    model,
                    tokens,
                    place: SessPlace::DecodeGpu(di as u32),
                    retained_at: now,
                    guard: None,
                },
            );
            self.tel.metrics.inc(self.tm.c_sess_retained_gpu, 1);
        } else {
            let node = self.decodes[di].node as usize;
            if self.nodes[node].cpu_kv.alloc(h, model, tokens).is_ok() {
                let kv_bytes = self.deploys[model.0 as usize].kv_token_bytes * tokens as u64;
                let g = self.topo.gpu(self.primary(InstRef::decode(di))).clone();
                let stream = if self.cfg.opts.fine_sync {
                    g.kv_out
                } else {
                    g.default_stream
                };
                self.submit(
                    stream,
                    StreamOp::Copy {
                        link: g.d2h,
                        bytes: kv_bytes,
                        // Noop, not KvOut: the handle is not a request and
                        // must not feed request-indexed telemetry.
                        tag: Tag::Noop,
                    },
                    q,
                );
                let (ev, cs) = self
                    .fabric
                    .record_event(stream, &mut Lift::new(q, Ev::Fabric));
                self.ready.extend(cs);
                // §5.3 rule ❸ for the GPU-side source blocks.
                let (shape, blocks) = self.decodes[di].gpu_kv.take(req);
                self.decodes[di].parked.park(ev, vec![(shape, blocks)]);
                self.sessions.insert(
                    sess,
                    SessEntry {
                        model,
                        tokens,
                        place: SessPlace::Cpu(node as u32),
                        retained_at: now,
                        guard: Some(ev),
                    },
                );
                self.tel.metrics.inc(self.tm.c_sess_retained_cpu, 1);
            } else {
                // Pressure on both tiers: give up retention.
                self.decodes[di].gpu_kv.free(req);
                self.tel.metrics.inc(self.tm.c_sess_evicted, 1);
            }
        }
        self.reqs[i].kv = KvPlace::None;
        self.reqs[i].kv_ready = false;
    }

    /// Algorithm 1 placement for a (possibly re-prefilled) request.
    fn route_prefill(&mut self, req: RequestId, q: &mut Q) {
        let model = self.trace.requests[req.0 as usize].model;
        let max_gpsize = self.cfg.max_gpsize;
        self.try_claim_prefix(req);
        // A spilled prefix only merges on its own node: bias routing there,
        // or release the claim when that node has no live prefill left.
        let want_node: Option<u32> =
            self.reqs[req.0 as usize]
                .prefix_claim
                .and_then(|c| match c.src {
                    SessPlace::Cpu(n) => Some(n),
                    SessPlace::DecodeGpu(_) => None,
                });
        let want_node = match want_node {
            Some(n) if !self.prefills.iter().any(|p| !p.dead && p.node == n) => {
                self.release_claim(req, q.now());
                self.reqs[req.0 as usize].prefix_hit = false;
                self.tel.metrics.inc(self.tm.c_sess_affinity_fallback, 1);
                None
            }
            w => w,
        };
        // Algorithm 1 lines 4–8: join an existing group anywhere.
        let mut placed: Option<usize> = None;
        for (i, p) in self.prefills.iter_mut().enumerate() {
            if !p.dead
                && want_node.is_none_or(|n| p.node == n)
                && p.queue.try_join(model, req, max_gpsize)
            {
                placed = Some(i);
                break;
            }
        }
        let pi = if let Some(i) = placed {
            i
        } else {
            // Lines 9–13: least-loaded queue gets a new group.
            let (deploys, reqs, trace, cfg) = (&self.deploys, &self.reqs, &self.trace, &self.cfg);
            let pcie = self.cfg.cluster.nodes[0].gpu.pcie_bw;
            let est_exec = |m: ModelId, r: RequestId| {
                let input = reqs
                    .get(r.0 as usize)
                    .map(|s| s.input_tokens)
                    .unwrap_or_else(|| trace.requests[r.0 as usize].input_tokens);
                deploys[m.0 as usize].fitted.estimate_prefill(&[input])
            };
            let est_switch = |m: ModelId| deploys[m.0 as usize].est_switch_secs(pcie, cfg.beta);
            let mut best = usize::MAX;
            let mut min_load = f64::INFINITY;
            for (i, p) in self.prefills.iter().enumerate() {
                if p.dead || want_node.is_some_and(|n| p.node != n) {
                    continue;
                }
                let load = p
                    .queue
                    .load_estimate(p.scaler.current, est_exec, est_switch);
                if load < min_load {
                    min_load = load;
                    best = i;
                }
            }
            if best == usize::MAX {
                assert!(self.shard_mode, "every prefill instance has failed");
                self.unclaim_for_migration(req, q.now());
                self.migrate_out(req, q.now());
                return;
            }
            self.prefills[best].queue.push_group(model, req);
            best
        };
        let now = q.now();
        self.tel_decision(req, now, || format!("prefill:{model}->p{pi}"));
        self.tel_begin_phase(req, SpanKind::QueueWait, "prefill-wait", now);
        self.prefill_try_start(pi, q);
    }

    fn prefill_try_start(&mut self, pi: usize, q: &mut Q) {
        if self.prefills[pi].dead || self.prefills[pi].active.is_some() {
            return;
        }
        let Some(front_model) = self.prefills[pi].queue.front_model() else {
            return;
        };
        let at = InstRef::prefill(pi);
        let ready = self.ensure_model(at, front_model, q);
        // Prefetch the next group's model while serving/scaling this one.
        if let Some(nm) = self.prefills[pi].queue.next_model() {
            if nm != front_model {
                self.start_prefetch(at, nm, q);
            }
        }
        if !ready {
            return;
        }
        let (model, req) = self.prefills[pi]
            .queue
            .pop_request()
            .expect("front model implies a pending request");
        // Fresh requests prefill their prompt (+1 slot for the first
        // token); failure-recovered requests rebuild their full context. A
        // request holding a prefix claim prefills only its delta — the
        // retained blocks merge in downstream.
        let fresh = self.reqs[req.0 as usize].produced == 0;
        let claimed = self.reqs[req.0 as usize].claimed_tokens();
        if claimed == 0 {
            // Any lost-prefix flag is moot once the sizing below covers the
            // full context (the claim was already dropped while queued).
            self.reqs[req.0 as usize].prefix_lost = false;
        }
        let full = self.reqs[req.0 as usize].ctx_tokens() + u32::from(fresh);
        let ptokens = full.saturating_sub(claimed);
        if self.prefills[pi].gpu_kv.alloc(req, model, ptokens).is_err() {
            // VRAM KV backpressure: requeue and retry after reclamation.
            self.prefills[pi].queue.push_front(model, req);
            self.prefills[pi].retry = true;
            return;
        }
        // Reuse accounting happens here, at compute issue, so alloc-retry
        // loops cannot double-count and a crash-forced second prefill of
        // the same turn honestly recounts its prefix as recomputed.
        {
            let rs = &self.reqs[req.0 as usize];
            if rs.session.is_some() && rs.prefix_tokens > 0 {
                if claimed > 0 {
                    self.prefix_hits += 1;
                    self.prefill_tokens_reused += claimed as u64;
                    self.prefill_tokens_recomputed += (rs.prefix_tokens - claimed) as u64;
                    self.tel.metrics.inc(self.tm.c_sess_prefix_hits, 1);
                    self.tel
                        .metrics
                        .inc(self.tm.c_sess_reused_tokens, claimed as u64);
                    self.tel.metrics.inc(
                        self.tm.c_sess_recomputed_tokens,
                        (rs.prefix_tokens - claimed) as u64,
                    );
                } else {
                    self.prefill_tokens_recomputed += rs.prefix_tokens as u64;
                    self.tel
                        .metrics
                        .inc(self.tm.c_sess_recomputed_tokens, rs.prefix_tokens as u64);
                }
            }
        }
        let now = q.now();
        {
            let rs = &mut self.reqs[req.0 as usize];
            rs.prefill_start = Some(now);
        }
        self.tel_begin_phase(req, SpanKind::Prefill, "prefill", now);
        self.breakdown.add_secs(
            Stage::PrefillWait,
            now.saturating_since(self.reqs[req.0 as usize].arrival)
                .as_secs_f64(),
        );
        let dur = self.deploys[model.0 as usize]
            .perf
            .prefill_secs(&[ptokens], &mut self.rng);
        self.prefills[pi].active = Some(req);
        self.compute_all(
            at,
            dur,
            Tag::PrefillDone {
                inst: pi as u32,
                req,
            },
            q,
        );
    }

    fn on_prefill_done(&mut self, pi: usize, req: RequestId, q: &mut Q) {
        if self.prefills[pi].dead {
            return; // completion from a failed instance
        }
        let now = q.now();
        let model = self.trace.requests[req.0 as usize].model;
        if self.reqs[req.0 as usize].prefix_lost {
            // The claimed prefix died while this delta-only prefill ran:
            // the KV just computed is unusable without it. Discard and
            // recompute the full context (chaos recovery path).
            self.tel_end_phase(req, now);
            self.prefills[pi].gpu_kv.free(req);
            {
                let rs = &mut self.reqs[req.0 as usize];
                rs.prefix_lost = false;
                rs.prefix_hit = false;
                rs.kv = KvPlace::None;
                rs.kv_ready = false;
                rs.prefill_start = None;
            }
            self.prefills[pi].active = None;
            self.tel.metrics.inc(self.tm.c_sess_affinity_fallback, 1);
            self.route_prefill(req, q);
            self.prefill_try_start(pi, q);
            return;
        }
        {
            let rs = &mut self.reqs[req.0 as usize];
            if rs.produced == 0 {
                rs.push_token(now); // first token; re-prefills only rebuild KV
                if self.tap_enabled {
                    self.tap.push(crate::events::TokenEv {
                        req,
                        index: 0,
                        at: now,
                        done: rs.is_done(),
                        prefix_hit: rs.prefix_hit,
                    });
                }
            }
            rs.prefill_end = Some(now);
            rs.kv = KvPlace::Gpu;
            rs.kv_ready = false;
        }
        let start = self.reqs[req.0 as usize]
            .prefill_start
            .expect("prefill started");
        self.breakdown.add_secs(
            Stage::PrefillExec,
            now.saturating_since(start).as_secs_f64(),
        );
        self.tel.attrib.add(
            pi as u32,
            model.0,
            CostKind::PrefillExec,
            now.saturating_since(start).as_secs_f64(),
        );
        if self.schedule.is_enabled() {
            let lane = self.primary(InstRef::prefill(pi)).to_string();
            self.schedule
                .record_with(lane, start, now, TraceKind::Prefill, || {
                    format!("P:{model}")
                });
        }
        self.tel_end_phase(req, now);
        self.prefills[pi].active = None;
        if self.reqs[req.0 as usize].is_done() {
            // Single-token request: the prefill's first token is also its
            // last. Retire here — decode batches skip done requests, so
            // dispatching it would park it (and its admission slot) forever.
            // An unabsorbed claim goes back to the book (the reuse was
            // real; the merge point simply never came), and the delta KV is
            // freed without retention.
            self.release_claim(req, now);
            self.prefills[pi].gpu_kv.free(req);
            let rs = &mut self.reqs[req.0 as usize];
            rs.kv = KvPlace::None;
            rs.kv_ready = false;
            self.completed += 1;
            self.tel_req_done(req, now);
        } else if self.issue_offload(InstRef::prefill(pi), req, q) {
            // Offload the fresh KV to the unified CPU cache, then hand the
            // request to a decoding instance (the swap-in will synchronize
            // on the offload event, §5.3 rule ❷).
            self.dispatch_decode_req(req, q);
        } else {
            let node = self.prefills[pi].node as usize;
            self.nodes[node]
                .offload_retry
                .push((InstRef::prefill(pi), req));
        }
        self.prefill_try_start(pi, q);
    }

    // ----- Decode path --------------------------------------------------

    fn dispatch_decode_req(&mut self, req: RequestId, q: &mut Q) {
        let model = self.trace.requests[req.0 as usize].model;
        let expected_ctx = self.reqs[req.0 as usize].input_tokens + self.cfg.expected_output_tokens;
        let req_node = match self.reqs[req.0 as usize].kv {
            KvPlace::Cpu { node } => node,
            _ => self.prefills.first().map(|p| p.node).unwrap_or(0),
        };
        if self.decodes.iter().all(|d| d.dead) {
            assert!(self.shard_mode, "every decoding instance has failed");
            self.unclaim_for_migration(req, q.now());
            self.migrate_out(req, q.now());
            return;
        }
        // A GPU-resident claimed prefix pins the request to its holder —
        // that is the whole point of session affinity. A dead holder means
        // the prefix is gone: fall back to a full recompute.
        let forced: Option<usize> =
            self.reqs[req.0 as usize]
                .prefix_claim
                .and_then(|c| match c.src {
                    SessPlace::DecodeGpu(h) => Some(h as usize),
                    SessPlace::Cpu(_) => None,
                });
        if let Some(h) = forced {
            if self.decodes[h].dead {
                self.abandon_claim_and_recompute(req, q);
                return;
            }
        }
        let (di, join) = {
            let decodes = &self.decodes;
            if let Some(h) = forced {
                // Algorithm 2's join-or-new on the holder alone.
                let lists = [&decodes[h].work];
                let (_, join) = dispatch_decode(
                    &lists,
                    model,
                    |_, b| {
                        let cap = decodes[h].gpu_kv.max_batch(model, expected_ctx);
                        b.reqs.len() < cap.max(1)
                    },
                    |_| true,
                );
                (h, join)
            } else {
                let alive: Vec<usize> = (0..decodes.len()).filter(|&i| !decodes[i].dead).collect();
                let lists: Vec<&WorkList> = alive.iter().map(|&i| &decodes[i].work).collect();
                let (k, join) = dispatch_decode(
                    &lists,
                    model,
                    |k, b| {
                        let i = alive[k];
                        let cap = decodes[i].gpu_kv.max_batch(model, expected_ctx);
                        b.reqs.len() < cap.max(1)
                    },
                    |k| decodes[alive[k]].node == req_node,
                );
                (alive[k], join)
            }
        };
        let batch_id = match join {
            Some(b) => {
                self.decodes[di]
                    .work
                    .get_mut(b)
                    .expect("joinable batch exists")
                    .reqs
                    .push(req);
                b
            }
            None => {
                let b = self.decodes[di].work.add_batch(model, req);
                // A fresh batch joins the *current* round at its tail with a
                // conservative quota, rather than stalling a whole round
                // (the "longer stalls for new decode batches" §4.3 warns
                // about). Its proper quota comes at the next round start.
                let d = &mut self.decodes[di];
                if d.turn.is_some() {
                    let default_quota = d
                        .work
                        .iter()
                        .map(|x| x.quota)
                        .fold(0.0f64, f64::max)
                        .max(self.cfg.qmax.min(1.0));
                    d.work.get_mut(b).expect("fresh batch").quota = default_quota;
                    d.round.push_back(b);
                }
                b
            }
        };
        {
            let rs = &mut self.reqs[req.0 as usize];
            rs.decode_inst = Some(di as u32);
            rs.decode_dispatch = Some(q.now());
            rs.phase = Phase::Decode;
        }
        let now = q.now();
        self.tel_decision(req, now, || format!("decode:{model}->d{di}"));
        self.tel_begin_phase(req, SpanKind::QueueWait, "decode-wait", now);
        // If this batch is currently mid-turn, pull the request straight in.
        let active_now = self.decodes[di]
            .turn
            .as_ref()
            .is_some_and(|t| t.batch == batch_id);
        if active_now {
            self.tel_begin_phase(req, SpanKind::DecodeRound, "decode-round", now);
            self.issue_swap_in(di, req, q);
            self.maybe_start_stepping(di, q);
        }
        self.decode_kick(di, q);
    }

    fn decode_kick(&mut self, di: usize, q: &mut Q) {
        if self.decodes[di].dead {
            return;
        }
        if self.decodes[di].turn.is_none() {
            self.start_round(di, q);
        }
    }

    fn start_round(&mut self, di: usize, q: &mut Q) {
        let pcie = self.cfg.cluster.nodes[0].gpu.pcie_bw;
        let (order, quotas) = {
            let d = &mut self.decodes[di];
            d.work.remove_empty();
            if d.work.is_empty() {
                d.turn = None;
                return;
            }
            d.work.reorder_by_model();
            // Equation (2)/(3) inputs from the *fitted* estimator.
            let step_times: Vec<f64> = d
                .work
                .iter()
                .map(|b| {
                    let ctx: u64 = b
                        .reqs
                        .iter()
                        .map(|r| self.reqs[r.0 as usize].ctx_tokens() as u64)
                        .sum();
                    self.deploys[b.model.0 as usize].fitted.estimate_decode(ctx)
                })
                .collect();
            let distinct = d.work.distinct_models();
            let switch_total: f64 = if distinct.len() == 1 && d.scaler.current == Some(distinct[0])
            {
                0.0
            } else {
                distinct
                    .iter()
                    .map(|m| {
                        if d.scaler.resident.contains(m) {
                            0.02 // colocated: activation only
                        } else {
                            self.deploys[m.0 as usize].est_switch_secs(pcie, self.cfg.beta)
                        }
                    })
                    .sum()
            };
            let rq = decode_quotas(&QuotaInputs {
                step_times,
                tbt: self.cfg.target_tbt,
                switch_total,
                qmax: self.cfg.qmax,
            });
            (d.work.order(), rq.quotas)
        };
        {
            let d = &mut self.decodes[di];
            for (id, quota) in order.iter().zip(&quotas) {
                if let Some(b) = d.work.get_mut(*id) {
                    b.quota = *quota;
                }
            }
            d.round = order.into_iter().collect();
        }
        self.begin_turn(di, q);
    }

    fn begin_turn(&mut self, di: usize, q: &mut Q) {
        // Find the next non-empty batch in the round.
        let (batch_id, model, quota, reqs) = loop {
            let d = &mut self.decodes[di];
            let Some(&front) = d.round.front() else {
                self.start_round(di, q);
                return;
            };
            match d.work.get(front) {
                Some(b) if !b.reqs.is_empty() => {
                    break (front, b.model, b.quota, b.reqs.clone());
                }
                _ => {
                    d.round.pop_front();
                }
            }
        };
        let gen = {
            let d = &mut self.decodes[di];
            d.turn_gen += 1;
            d.turn = Some(TurnState {
                batch: batch_id,
                gen: d.turn_gen,
                quota,
                decode_started: None,
                stepping: false,
                step_reqs: Vec::new(),
                step_dur: 0.0,
                kv_stall_since: None,
                span: SpanId::NONE,
            });
            d.turn_gen
        };
        debug_assert!(gen > 0);
        let now = q.now();
        self.tel
            .metrics
            .observe(self.tm.h_batch_size, reqs.len() as f64);
        if self.tel.is_enabled() {
            let span = self.tel.spans.start(
                || format!("decode{di}"),
                SpanKind::DecodeRound,
                now,
                SpanId::NONE,
                SpanId::NONE,
                || format!("turn:{model}"),
            );
            if let Some(t) = self.decodes[di].turn.as_mut() {
                t.span = span;
            }
            for r in &reqs {
                // The turn is the cause of each member's decode-round phase.
                self.req_tel[r.0 as usize].cause = span;
                self.tel_begin_phase(*r, SpanKind::DecodeRound, "decode-round", now);
            }
        }
        let at = InstRef::decode(di);
        // Prefetch the next different model: look ahead in this round, and
        // across the boundary into the (reordered) next round.
        let next_model = self.decodes[di]
            .round
            .iter()
            .skip(1)
            .filter_map(|id| self.decodes[di].work.get(*id))
            .map(|b| b.model)
            .find(|&m| m != model)
            .or_else(|| {
                self.decodes[di]
                    .work
                    .iter()
                    .map(|b| b.model)
                    .find(|&m| m != model)
            });
        // Scale first (possibly consuming the prefetch region), then start
        // prefetching the turn after — the §5.2 "may even start prefetching
        // the next model" once the promotion copy finishes.
        self.ensure_model(at, model, q);
        if let Some(nm) = next_model {
            self.start_prefetch(at, nm, q);
        }
        for req in reqs {
            self.issue_swap_in(di, req, q);
        }
        self.maybe_start_stepping(di, q);
    }

    fn maybe_start_stepping(&mut self, di: usize, q: &mut Q) {
        let now = q.now();
        let at = InstRef::decode(di);
        let Some(batch_model) = self.decodes[di]
            .turn
            .as_ref()
            .and_then(|t| self.decodes[di].work.get(t.batch))
            .map(|b| b.model)
        else {
            return;
        };
        let scaler_ready =
            self.scaler(at).current == Some(batch_model) && self.scaler(at).scaling.is_none();
        let d = &mut self.decodes[di];
        let Some(turn) = d.turn.as_mut() else { return };
        if turn.stepping {
            return;
        }
        if !scaler_ready {
            return;
        }
        let batch = d.work.get(turn.batch).expect("turn batch exists");
        let total = batch.reqs.len();
        let ready = batch
            .reqs
            .iter()
            .filter(|r| self.reqs[r.0 as usize].kv_ready)
            .count();
        let need_all = !self.cfg.opts.fine_sync;
        let can_start = if need_all {
            ready == total && total > 0
        } else {
            ready > 0
        };
        if !can_start {
            if turn.kv_stall_since.is_none() {
                turn.kv_stall_since = Some(now);
            }
            return;
        }
        if let Some(s) = turn.kv_stall_since.take() {
            let stall = now.saturating_since(s).as_secs_f64();
            self.breakdown.add_secs(Stage::DataOverhead, stall);
            for r in &batch.reqs.clone() {
                let rs = &mut self.reqs[r.0 as usize];
                if rs.kv_ready {
                    rs.data_wait_secs += stall;
                }
            }
        }
        let t = self.decodes[di].turn.as_mut().expect("turn exists");
        if t.decode_started.is_none() {
            t.decode_started = Some(now);
        }
        t.stepping = true;
        self.issue_step(di, q);
    }

    fn issue_step(&mut self, di: usize, q: &mut Q) {
        let now = q.now();
        let (batch_id, gen, quota, started) = {
            let t = self.decodes[di].turn.as_ref().expect("stepping turn");
            (
                t.batch,
                t.gen,
                t.quota,
                t.decode_started.expect("decoding started"),
            )
        };
        let elapsed = now.saturating_since(started).as_secs_f64();
        if elapsed >= quota {
            self.end_turn(di, q);
            return;
        }
        let (model, active): (ModelId, Vec<RequestId>) = {
            let d = &self.decodes[di];
            let b = d.work.get(batch_id).expect("turn batch exists");
            (
                b.model,
                b.reqs
                    .iter()
                    .copied()
                    .filter(|r| {
                        self.reqs[r.0 as usize].kv_ready && !self.reqs[r.0 as usize].is_done()
                    })
                    .collect(),
            )
        };
        if active.is_empty() {
            let any_left = {
                let d = &self.decodes[di];
                !d.work.get(batch_id).expect("batch").reqs.is_empty()
            };
            let t = self.decodes[di].turn.as_mut().expect("turn");
            t.stepping = false;
            if any_left {
                // Waiting on swap-ins; KvIn completions resume stepping.
                t.kv_stall_since = Some(now);
            } else {
                self.end_turn(di, q);
            }
            return;
        }
        let ctx: u64 = active
            .iter()
            .map(|r| self.reqs[r.0 as usize].ctx_tokens() as u64)
            .sum();
        let dur = self.deploys[model.0 as usize]
            .perf
            .decode_secs(active.len(), ctx, &mut self.rng);
        {
            let t = self.decodes[di].turn.as_mut().expect("turn");
            t.step_reqs = active;
            t.step_dur = dur.as_secs_f64();
        }
        self.compute_all(
            InstRef::decode(di),
            dur,
            Tag::DecodeStep {
                inst: di as u32,
                turn: gen,
            },
            q,
        );
    }

    fn on_decode_step(&mut self, di: usize, gen: u64, q: &mut Q) {
        if self.decodes[di].dead {
            return;
        }
        let now = q.now();
        let current_gen = self.decodes[di].turn.as_ref().map(|t| t.gen);
        if current_gen != Some(gen) {
            return; // stale step from an ended turn
        }
        let (step_reqs, dur) = {
            let t = self.decodes[di].turn.as_ref().expect("turn");
            (t.step_reqs.clone(), t.step_dur)
        };
        if self.schedule.is_enabled() {
            let lane = self.primary(InstRef::decode(di)).to_string();
            let model = self.trace.requests[step_reqs[0].0 as usize].model;
            self.schedule.record_with(
                lane,
                now - SimDur::from_secs_f64(dur),
                now,
                TraceKind::Decode,
                || format!("D:{model}"),
            );
        }
        self.breakdown
            .add_secs(Stage::DecodeExec, dur * step_reqs.len() as f64);
        if let Some(&r0) = step_reqs.first() {
            // A decode step batches one model's requests; attribute the
            // instance's busy seconds (per request, like the breakdown).
            let m = self.trace.requests[r0.0 as usize].model;
            let inst = self.ledger_inst(InstRef::decode(di));
            self.tel
                .attrib
                .add(inst, m.0, CostKind::DecodeExec, dur * step_reqs.len() as f64);
        }
        let mut overflow = false;
        for req in step_reqs {
            let rs = &mut self.reqs[req.0 as usize];
            rs.push_token(now);
            rs.decode_exec_secs += dur;
            let done = rs.is_done();
            let ctx = rs.ctx_tokens();
            if self.tap_enabled {
                self.tap.push(crate::events::TokenEv {
                    req,
                    index: rs.produced - 1,
                    at: now,
                    done,
                    prefix_hit: rs.prefix_hit,
                });
            }
            if done {
                self.retire_decode_kv(di, req, q);
                self.decodes[di].work.remove_request(req);
                self.completed += 1;
                self.tel_req_done(req, now);
            } else if self.decodes[di].gpu_kv.extend(req, ctx).is_err() {
                overflow = true;
            }
        }
        if overflow {
            // KV pool pressure: finish the turn to offload peers and let the
            // daemon reclaim parked blocks.
            self.end_turn(di, q);
        } else {
            self.issue_step(di, q);
        }
    }

    fn end_turn(&mut self, di: usize, q: &mut Q) {
        let Some(turn) = self.decodes[di].turn.take() else {
            return;
        };
        let batch_id = turn.batch;
        // A single-model work list never needs to offload: the same model
        // decodes again next round. With the residency extension enabled,
        // batches also stay resident while the unified GPU cache keeps
        // ample headroom (> 2x this batch's footprint free).
        let mut skip_offload = self.decodes[di].work.distinct_models().len() <= 1;
        let reqs: Vec<RequestId> = self.decodes[di]
            .work
            .get(batch_id)
            .map(|b| b.reqs.clone())
            .unwrap_or_default();
        {
            let now = q.now();
            if !reqs.is_empty() {
                // Quota expired with members still decoding: a preemption.
                self.tel.metrics.inc(self.tm.c_preemptions, 1);
                if self.tel.is_enabled() {
                    self.tel.spans.instant(
                        || format!("decode{di}"),
                        SpanKind::Preempt,
                        now,
                        turn.span,
                        || "preempt",
                    );
                }
            }
            if self.tel.is_enabled() {
                for r in &reqs {
                    self.tel_end_phase(*r, now);
                }
            }
            self.tel.spans.end(turn.span, now);
        }
        if !skip_offload && self.cfg.kv_residency {
            if let Some(b) = self.decodes[di].work.get(batch_id) {
                let ctx: u64 = b
                    .reqs
                    .iter()
                    .map(|r| self.reqs[r.0 as usize].ctx_tokens() as u64)
                    .sum();
                skip_offload = self.decodes[di].gpu_kv.token_capacity(b.model) > ctx * 2;
            }
        }
        if !skip_offload {
            for req in reqs {
                if self.reqs[req.0 as usize].kv_ready
                    && !self.issue_offload(InstRef::decode(di), req, q)
                {
                    // CPU cache pressure: leave resident; decode can
                    // still proceed next time from VRAM.
                }
            }
        }
        self.decodes[di].round.pop_front();
        if self.decodes[di].round.is_empty() {
            self.start_round(di, q);
        } else {
            self.begin_turn(di, q);
        }
    }

    fn on_kv_in(&mut self, di: usize, req: RequestId, _turn: u64, q: &mut Q) {
        self.tel_kv_end(req, q.now(), false);
        if self.decodes[di].dead {
            return;
        }
        {
            let rs = &mut self.reqs[req.0 as usize];
            rs.swapin_inflight = false;
            rs.kv_ready = true;
        }
        // The delta KV and the GPU-resident claimed prefix now share this
        // GPU: merge them into one entry (token counts line up with the
        // full context by the claim rule).
        if let Some(c) = self.reqs[req.0 as usize].prefix_claim {
            if let SessPlace::DecodeGpu(h) = c.src {
                debug_assert_eq!(h as usize, di, "claimed request dispatched off-holder");
                let sess = self.reqs[req.0 as usize].session;
                self.decodes[di]
                    .gpu_kv
                    .absorb(req, SessionBook::handle(sess));
                self.reqs[req.0 as usize].prefix_claim = None;
                self.sessions.clear_claim(sess);
            }
        }
        self.maybe_start_stepping(di, q);
    }

    // ----- KV movement --------------------------------------------------

    /// Starts offloading a request's GPU KV to its node's unified CPU
    /// cache. Returns false if the CPU cache cannot hold it right now.
    fn issue_offload(&mut self, at: InstRef, req: RequestId, q: &mut Q) -> bool {
        let node = self.inst_node(at) as usize;
        let model = self.trace.requests[req.0 as usize].model;
        let ctx = self.reqs[req.0 as usize].ctx_tokens();
        // Only the freshly computed tokens move: a claimed prefix already
        // lives in its own cache (and merges below when that cache is this
        // node's).
        let claimed = self.reqs[req.0 as usize].claimed_tokens();
        let move_tokens = ctx.saturating_sub(claimed);
        if self.nodes[node].cpu_kv.alloc(req, model, move_tokens).is_err() {
            return false;
        }
        // A spilled prefix on this node merges with the arriving delta into
        // one CPU entry (routing pinned the prefill to this node).
        if let Some(c) = self.reqs[req.0 as usize].prefix_claim {
            if let SessPlace::Cpu(cn) = c.src {
                debug_assert_eq!(cn as usize, node, "claimed request offloaded off-node");
                let sess = self.reqs[req.0 as usize].session;
                self.nodes[node]
                    .cpu_kv
                    .absorb(req, SessionBook::handle(sess));
                self.reqs[req.0 as usize].prefix_claim = None;
                self.sessions.clear_claim(sess);
            }
        }
        let kv_bytes = self.deploys[model.0 as usize].kv_token_bytes * move_tokens as u64;
        let (shape, blocks) = match at.kind {
            InstKind::Prefill => self.prefills[at.idx as usize].gpu_kv.take(req),
            InstKind::Decode => self.decodes[at.idx as usize].gpu_kv.take(req),
        };
        let g = self.topo.gpu(self.primary(at)).clone();
        let stream = if self.cfg.opts.fine_sync {
            g.kv_out
        } else {
            g.default_stream
        };
        self.submit(
            stream,
            StreamOp::Copy {
                link: g.d2h,
                bytes: kv_bytes,
                tag: Tag::KvOut { req },
            },
            q,
        );
        let (ev, cs) = self
            .fabric
            .record_event(stream, &mut Lift::new(q, Ev::Fabric));
        self.ready.extend(cs);
        match at.kind {
            InstKind::Prefill => self.prefills[at.idx as usize]
                .parked
                .park(ev, vec![(shape, blocks)]),
            InstKind::Decode => self.decodes[at.idx as usize]
                .parked
                .park(ev, vec![(shape, blocks)]),
        }
        {
            let rs = &mut self.reqs[req.0 as usize];
            rs.kv = KvPlace::Cpu { node: node as u32 };
            rs.kv_ready = false;
            rs.offload_event = Some(ev);
            rs.swaps += 1;
            rs.control_secs += self.cfg.control_overhead_per_swap.as_secs_f64();
        }
        self.breakdown.add_secs(
            Stage::ControlOverhead,
            self.cfg.control_overhead_per_swap.as_secs_f64(),
        );
        self.swaps += 1;
        self.tel.metrics.inc(self.tm.c_swaps, 1);
        let inst = self.ledger_inst(at);
        self.tel_kv_start(req, q.now(), true, inst);
        true
    }

    /// Starts swapping a request's KV from the CPU cache into decoding
    /// instance `di`. No-op if it is already resident or in flight.
    fn issue_swap_in(&mut self, di: usize, req: RequestId, q: &mut Q) {
        let (src_node, ctx, model) = {
            let rs = &self.reqs[req.0 as usize];
            if rs.kv_ready || rs.swapin_inflight {
                return;
            }
            let KvPlace::Cpu { node } = rs.kv else {
                return;
            };
            (
                node as usize,
                rs.ctx_tokens(),
                self.trace.requests[req.0 as usize].model,
            )
        };
        // A GPU-resident claimed prefix is already on this instance (the
        // dispatch pinned us to its holder): only the delta moves up.
        let claimed = self.reqs[req.0 as usize].claimed_tokens();
        let move_tokens = ctx.saturating_sub(claimed);
        if self
            .decodes[di]
            .gpu_kv
            .alloc(req, model, move_tokens)
            .is_err()
        {
            // GPU KV pressure; the daemon retries after reclamation.
            return;
        }
        let (shape, blocks) = self.nodes[src_node].cpu_kv.take(req);
        let kv_bytes = self.deploys[model.0 as usize].kv_token_bytes * move_tokens as u64;
        let g = self.topo.gpu(self.primary(InstRef::decode(di))).clone();
        let stream = if self.cfg.opts.fine_sync {
            g.kv_in
        } else {
            g.default_stream
        };
        let turn_gen = self.decodes[di].turn.as_ref().map(|t| t.gen).unwrap_or(0);
        if let Some(ev) = self.reqs[req.0 as usize].offload_event {
            // §5.3 rule ❷: wait for the offload writing these blocks.
            let cs = self
                .fabric
                .wait_event(stream, ev, &mut Lift::new(q, Ev::Fabric));
            self.ready.extend(cs);
        }
        if src_node as u32 != self.decodes[di].node {
            let nic = self.topo.node(aegaeon_gpu::NodeId(src_node as u32)).nic_tx;
            self.submit(
                stream,
                StreamOp::Copy {
                    link: nic,
                    bytes: kv_bytes,
                    tag: Tag::Noop,
                },
                q,
            );
        }
        self.submit(
            stream,
            StreamOp::Copy {
                link: g.h2d,
                bytes: kv_bytes,
                tag: Tag::KvIn {
                    inst: di as u32,
                    req,
                    turn: turn_gen,
                },
            },
            q,
        );
        let (ev_in, cs) = self
            .fabric
            .record_event(stream, &mut Lift::new(q, Ev::Fabric));
        self.ready.extend(cs);
        // §5.3 rule ❸: the CPU blocks stay unsafe until the copy completes;
        // the daemon reclaims them via the move list.
        self.nodes[src_node]
            .cpu_parked
            .park(ev_in, vec![(shape, blocks)]);
        {
            let rs = &mut self.reqs[req.0 as usize];
            rs.kv = KvPlace::Gpu;
            rs.swapin_inflight = true;
            rs.swaps += 1;
            rs.control_secs += self.cfg.control_overhead_per_swap.as_secs_f64();
        }
        self.breakdown.add_secs(
            Stage::ControlOverhead,
            self.cfg.control_overhead_per_swap.as_secs_f64(),
        );
        self.swaps += 1;
        self.tel.metrics.inc(self.tm.c_swaps, 1);
        let inst = self.ledger_inst(InstRef::decode(di));
        self.tel_kv_start(req, q.now(), false, inst);
    }

    // ----- Auto-scaling -------------------------------------------------

    /// Ensures `target` is the instance's resident model. Returns true when
    /// it already is (and no scaling is in progress).
    fn ensure_model(&mut self, at: InstRef, target: ModelId, q: &mut Q) -> bool {
        let s = self.scaler(at);
        if s.current == Some(target) && s.scaling.is_none() {
            return true;
        }
        if self.weight_slots > 1 && s.scaling.is_none() && s.resident.contains(&target) {
            // Colocated model: activation is free (§8 multiplexing).
            let sc = self.scaler_mut(at);
            sc.resident.retain(|&m| m != target);
            sc.resident.push(target); // most-recently-used at the back
            sc.current = Some(target);
            self.instant_switches += 1;
            return true;
        }
        let s = self.scaler(at);
        if s.scaling.is_some() {
            // Either already scaling to `target`, or to a stale target; the
            // completion handler re-evaluates what the instance needs.
            return false;
        }
        self.start_scale(at, target, q);
        false
    }

    fn start_scale(&mut self, at: InstRef, target: ModelId, q: &mut Q) {
        let now = q.now();
        let node = self.inst_node(at) as usize;
        let deploy = &self.deploys[target.0 as usize];
        let shard = deploy.shard_bytes;
        let cached = self.nodes[node].model_cache.lookup(target.0);
        if !cached {
            let bytes = deploy.spec.weight_bytes();
            // The fetch below brings it into the cache (LRU-evicting).
            let _ = self.nodes[node].model_cache.insert(target.0, bytes);
        }
        let (prefetch_hit, wait_events) = {
            let s = self.scaler_mut(at);
            let hit = s.prefetched == Some(target);
            let wait = match &s.prefetch_inflight {
                Some((m, evs)) if *m == target => Some(evs.clone()),
                _ => None,
            };
            (hit, wait)
        };
        let warm = self.scaler(at).warm;
        let mut opts = self.cfg.opts;
        opts.component_reuse = opts.component_reuse && warm;
        let plan = scale_up_plan(
            &opts,
            &self.cfg.init_costs,
            shard,
            prefetch_hit || wait_events.is_some(),
            cached,
            self.cfg.remote_bw,
        );
        let gpus = self.inst_gpus(at).to_vec();
        let seq = {
            let s = self.scaler_mut(at);
            s.scale_seq += 1;
            s.scaling = Some(Scaling {
                target,
                started: now,
                remaining_ops: (plan.stages.len() * gpus.len()) as u32,
                prefetch_hit: prefetch_hit || wait_events.is_some(),
                seq: s.scale_seq,
            });
            s.scale_seq
        };
        self.scale_count += 1;
        self.tel.metrics.inc(self.tm.c_switches, 1);
        if self.tel.is_enabled() {
            // A crash can strand the previous switch span open: close it
            // before a new switch starts on the same instance track.
            let old = std::mem::replace(&mut self.scaler_mut(at).switch_span, SpanId::NONE);
            self.tel.spans.end(old, now);
            let span = self.tel.spans.start(
                || match at.kind {
                    InstKind::Prefill => format!("prefill{}", at.idx),
                    InstKind::Decode => format!("decode{}", at.idx),
                },
                SpanKind::Switch,
                now,
                SpanId::NONE,
                SpanId::NONE,
                || format!("S:{target}"),
            );
            self.scaler_mut(at).switch_span = span;
        }
        for (gi, g) in gpus.iter().enumerate() {
            let h = self.topo.gpu(*g).clone();
            if let Some(evs) = &wait_events {
                if let Some(ev) = evs.get(gi) {
                    let cs = self.fabric.wait_event(
                        h.default_stream,
                        *ev,
                        &mut Lift::new(q, Ev::Fabric),
                    );
                    self.ready.extend(cs);
                }
            }
            for st in &plan.stages {
                let tag = Tag::ScaleStage { at, seq };
                let op = match st.cost {
                    ScaleCost::Fixed(d) => StreamOp::Compute { dur: d, tag },
                    ScaleCost::HostLoad { bytes, efficiency } => {
                        // Chaos injection: while the node's pinned stage
                        // buffer is exhausted, the load falls back to
                        // pageable DMA at a fraction of the pipelined rate.
                        let eff = if self.stage_oom_depth[self.inst_node(at) as usize] > 0 {
                            efficiency * aegaeon_mem::UNPINNED_FALLBACK_EFFICIENCY
                        } else {
                            efficiency
                        };
                        StreamOp::Copy {
                            link: h.h2d,
                            bytes: (bytes as f64 / eff) as u64,
                            tag,
                        }
                    }
                    ScaleCost::DeviceCopy { bytes } => StreamOp::Compute {
                        dur: SimDur::from_secs_f64(bytes as f64 / h.spec.device_copy_bw()),
                        tag,
                    },
                };
                self.submit(h.default_stream, op, q);
            }
        }
    }

    fn on_scale_stage(&mut self, at: InstRef, seq: u64, q: &mut Q) {
        if self.inst_dead(at) {
            return;
        }
        let done = {
            let s = self.scaler_mut(at);
            match &mut s.scaling {
                Some(sc) if sc.seq == seq => {
                    sc.remaining_ops -= 1;
                    sc.remaining_ops == 0
                }
                _ => return,
            }
        };
        if !done {
            return;
        }
        let now = q.now();
        let (target, started, hit) = {
            let s = self.scaler_mut(at);
            let sc = s.scaling.take().expect("scaling in progress");
            s.current = Some(sc.target);
            s.warm = true;
            if sc.prefetch_hit {
                // Consume only the prefetch that fed this scale-up; an
                // in-flight prefetch for a *different* model stays live.
                if s.prefetched == Some(sc.target) {
                    s.prefetched = None;
                }
                if matches!(&s.prefetch_inflight, Some((m, _)) if *m == sc.target) {
                    s.prefetch_inflight = None;
                }
            }
            (sc.target, sc.started, sc.prefetch_hit)
        };
        if hit {
            self.prefetch_hits += 1;
            self.tel.metrics.inc(self.tm.c_prefetch_hits, 1);
        }
        if self.weight_slots > 1 {
            let slots = self.weight_slots as usize;
            let sc = self.scaler_mut(at);
            sc.resident.retain(|&m| m != target);
            sc.resident.push(target);
            while sc.resident.len() > slots {
                sc.resident.remove(0); // evict least recently used
            }
        }
        self.scale_latencies
            .push(now.saturating_since(started).as_secs_f64());
        self.tel.metrics.observe(
            self.tm.h_scale_latency,
            now.saturating_since(started).as_secs_f64(),
        );
        let inst = self.ledger_inst(at);
        self.tel.attrib.add(
            inst,
            target.0,
            CostKind::ModelSwitch,
            now.saturating_since(started).as_secs_f64(),
        );
        let switch_span = std::mem::replace(&mut self.scaler_mut(at).switch_span, SpanId::NONE);
        self.tel.spans.end(switch_span, now);
        if self.schedule.is_enabled() {
            let lane = self.primary(at).to_string();
            self.schedule
                .record_with(lane, started, now, TraceKind::Switch, || {
                    format!("S:{target}")
                });
        }
        // Exercise the self-managed buffer bookkeeping on prefill
        // instances (weights region reset + realloc, §5.2).
        if at.kind == InstKind::Prefill {
            let p = &mut self.prefills[at.idx as usize];
            p.vram.reset();
            let shard = self.deploys[target.0 as usize].shard_bytes;
            let ext = p
                .vram
                .alloc(shard, 256)
                .expect("weights region sized for the largest shard");
            debug_assert_eq!(ext.offset, 0);
            p.weights_mark = Some(p.vram.mark());
        }
        match at.kind {
            InstKind::Prefill => self.prefill_try_start(at.idx as usize, q),
            InstKind::Decode => {
                let di = at.idx as usize;
                // The turn may need a *different* model by now.
                let needed = self.decodes[di]
                    .turn
                    .as_ref()
                    .and_then(|t| self.decodes[di].work.get(t.batch))
                    .map(|b| b.model);
                match needed {
                    Some(m) if m != target => {
                        self.start_scale(at, m, q);
                    }
                    Some(_) => self.maybe_start_stepping(di, q),
                    None => {}
                }
            }
        }
    }

    fn start_prefetch(&mut self, at: InstRef, model: ModelId, q: &mut Q) {
        if !self.prefetch_enabled {
            return;
        }
        {
            let s = self.scaler(at);
            if s.prefetch_inflight.is_some()
                || s.prefetched == Some(model)
                || s.current == Some(model)
            {
                return;
            }
            if let Some(sc) = &s.scaling {
                if sc.target == model {
                    return;
                }
            }
        }
        let node = self.inst_node(at) as usize;
        if !self.nodes[node].model_cache.contains(model.0) {
            return; // prefetch only cache-resident checkpoints
        }
        self.nodes[node].model_cache.touch(model.0);
        let shard = self.deploys[model.0 as usize].shard_bytes;
        let seq = {
            let s = self.scaler_mut(at);
            s.prefetch_seq += 1;
            s.prefetch_seq
        };
        let gpus = self.inst_gpus(at).to_vec();
        let inner = Tag::PrefetchDone { at, model, seq };
        let tag = self.multi(gpus.len() as u32, inner);
        let mut events = Vec::with_capacity(gpus.len());
        for g in gpus {
            let h = self.topo.gpu(g).clone();
            self.submit(
                h.prefetch,
                StreamOp::Copy {
                    link: h.h2d,
                    bytes: (shard as f64 / PIPELINED_LOAD_EFFICIENCY) as u64,
                    tag: tag.clone(),
                },
                q,
            );
            let (ev, cs) = self
                .fabric
                .record_event(h.prefetch, &mut Lift::new(q, Ev::Fabric));
            self.ready.extend(cs);
            events.push(ev);
        }
        self.scaler_mut(at).prefetch_inflight = Some((model, events));
    }

    fn on_prefetch_done(&mut self, at: InstRef, model: ModelId, seq: u64, _q: &mut Q) {
        let slots = self.weight_slots as usize;
        let s = self.scaler_mut(at);
        if s.prefetch_seq != seq {
            return;
        }
        if let Some((m, _)) = &s.prefetch_inflight {
            if *m == model {
                s.prefetch_inflight = None;
                if slots > 1 {
                    // The spare slot now holds the model: fully resident,
                    // activation will be free.
                    s.resident.retain(|&x| x != model);
                    // Evict a non-current resident if the slots are full.
                    while s.resident.len() >= slots {
                        let victim = s
                            .resident
                            .iter()
                            .position(|&x| Some(x) != s.current)
                            .unwrap_or(0);
                        s.resident.remove(victim);
                    }
                    s.resident.push(model);
                } else {
                    s.prefetched = Some(model);
                }
            }
        }
    }

    // ----- Housekeeping -------------------------------------------------

    fn daemon(&mut self, q: &mut Q) {
        // Reclaim GPU-side parked blocks (offload sources).
        for pi in 0..self.prefills.len() {
            let fabric = &self.fabric;
            let freed = self.prefills[pi]
                .parked
                .reclaim(|ev| fabric.query_event(*ev));
            for (shape, blocks) in freed {
                self.prefills[pi].gpu_kv.free_blocks(shape, &blocks);
            }
            if self.prefills[pi].retry {
                self.prefills[pi].retry = false;
                self.prefill_try_start(pi, q);
            }
        }
        for di in 0..self.decodes.len() {
            let fabric = &self.fabric;
            let freed = self.decodes[di]
                .parked
                .reclaim(|ev| fabric.query_event(*ev));
            let reclaimed = !freed.is_empty();
            for (shape, blocks) in freed {
                self.decodes[di].gpu_kv.free_blocks(shape, &blocks);
            }
            if reclaimed {
                // Retry swap-ins that failed on GPU KV pressure.
                if let Some(t) = self.decodes[di].turn.as_ref() {
                    let pending: Vec<RequestId> = self.decodes[di]
                        .work
                        .get(t.batch)
                        .map(|b| {
                            b.reqs
                                .iter()
                                .copied()
                                .filter(|r| {
                                    let rs = &self.reqs[r.0 as usize];
                                    !rs.kv_ready && !rs.swapin_inflight
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    for req in pending {
                        self.issue_swap_in(di, req, q);
                    }
                    self.maybe_start_stepping(di, q);
                }
            }
        }
        // Reclaim CPU-side parked blocks and retry stalled offloads.
        for ni in 0..self.nodes.len() {
            let fabric = &self.fabric;
            let freed = self.nodes[ni]
                .cpu_parked
                .reclaim(|ev| fabric.query_event(*ev));
            for (shape, blocks) in freed {
                self.nodes[ni].cpu_kv.free_blocks(shape, &blocks);
            }
            let retries = std::mem::take(&mut self.nodes[ni].offload_retry);
            for (at, req) in retries {
                // A retrying request whose claimed prefix died holds
                // delta-only KV: discard it and recompute instead of
                // offloading an incomplete context.
                if self.reqs[req.0 as usize].prefix_lost {
                    if at.kind == InstKind::Prefill {
                        let pi = at.idx as usize;
                        if !self.prefills[pi].dead && self.prefills[pi].gpu_kv.holds(req) {
                            self.prefills[pi].gpu_kv.free(req);
                        }
                    }
                    let rs = &mut self.reqs[req.0 as usize];
                    rs.prefix_lost = false;
                    rs.prefix_hit = false;
                    rs.kv = KvPlace::None;
                    rs.kv_ready = false;
                    rs.phase = Phase::Prefill;
                    self.tel.metrics.inc(self.tm.c_sess_affinity_fallback, 1);
                    self.route_prefill(req, q);
                    continue;
                }
                if self.issue_offload(at, req, q) {
                    self.dispatch_decode_req(req, q);
                } else {
                    self.nodes[ni].offload_retry.push((at, req));
                }
            }
        }
        // Session-KV TTL: a retained prefix idle past the think-gap budget
        // stops paying for its residency and is evicted.
        if self.cfg.session_affinity && !self.sessions.is_empty() {
            let now = q.now();
            for sess in self.sessions.expired(now, self.cfg.session_kv_ttl) {
                let e = self.sessions.remove(sess).expect("expired entry exists");
                self.free_sess_entry(sess, &e);
                self.tel.metrics.inc(self.tm.c_sess_expired, 1);
            }
        }
        self.drain(q);
    }

    fn sample(&mut self, q: &mut Q) {
        let now = q.now();
        // Instances publish heartbeats and load hints to the status store.
        for pi in 0..self.prefills.len() {
            if !self.prefills[pi].dead {
                let load = self.prefills[pi].queue.pending() as f64;
                self.meta.heartbeat(InstRef::prefill(pi), now, load);
            }
        }
        for di in 0..self.decodes.len() {
            if !self.decodes[di].dead {
                let load = self.decodes[di].work.len() as f64;
                self.meta.heartbeat(InstRef::decode(di), now, load);
            }
        }
        // Combined CPU-cache usage across nodes (aligned shape order).
        let mut combined = self.nodes[0].cpu_kv.usage();
        for n in &self.nodes[1..] {
            for (acc, u) in combined.iter_mut().zip(n.cpu_kv.usage()) {
                acc.allocated_bytes += u.allocated_bytes;
                acc.used_bytes += u.used_bytes;
                acc.peak_allocated_bytes += u.peak_allocated_bytes;
            }
        }
        self.frag
            .sample(self.cfg.sample_period.as_secs_f64(), &combined);
        let busy: Vec<f64> = self
            .topo
            .gpu_ids()
            .map(|g| {
                self.fabric
                    .stream_compute_busy(self.topo.gpu(g).default_stream)
                    .as_secs_f64()
            })
            .collect();
        self.util_samples.push((now, busy));
    }

    pub(crate) fn finish(mut self, q: &Q) -> RunResult {
        let outcomes: Vec<RequestOutcome> = self
            .trace
            .requests
            .iter()
            .map(|r| {
                let rs = &self.reqs[r.id.0 as usize];
                RequestOutcome {
                    id: r.id,
                    model: r.model,
                    arrival: rs.arrival,
                    token_times: rs.token_times.clone(),
                    target_tokens: r.output_tokens,
                }
            })
            .collect();
        // Residual decode waiting per finished request.
        let mut kv_sync = Vec::new();
        for rs in &self.reqs {
            kv_sync.push(rs.data_wait_secs + rs.control_secs);
            if let (Some(d), Some(f)) = (rs.decode_dispatch, rs.finished_at) {
                let total = f.saturating_since(d).as_secs_f64();
                let wait = (total - rs.decode_exec_secs - rs.data_wait_secs).max(0.0);
                self.breakdown.add_secs(Stage::DecodeWait, wait);
            }
        }
        let gpu_busy: Vec<f64> = self
            .topo
            .gpu_ids()
            .map(|g| {
                self.fabric
                    .stream_compute_busy(self.topo.gpu(g).default_stream)
                    .as_secs_f64()
            })
            .collect();
        self.tel
            .metrics
            .set_counter(self.tm.c_events_dispatched, q.events_dispatched());
        let (meta_reads, meta_writes) = self.meta.stats();
        self.tel
            .metrics
            .set_counter(self.tm.c_meta_reads, meta_reads);
        self.tel
            .metrics
            .set_counter(self.tm.c_meta_writes, meta_writes);
        self.tel
            .metrics
            .set_counter(self.tm.c_completed, self.completed as u64);
        self.tel.finish(q.now());
        RunResult {
            outcomes,
            horizon: self.trace.horizon,
            end_time: q.now(),
            breakdown: self.breakdown,
            scale_latencies: self.scale_latencies,
            kv_sync_per_request: kv_sync,
            frag_rows: self.frag.report(),
            gpu_busy,
            util_samples: self.util_samples,
            completed: self.completed,
            total_requests: self.trace.len(),
            model_count: self.deploys.len(),
            scale_count: self.scale_count,
            prefetch_hits: self.prefetch_hits,
            swaps: self.swaps,
            prefix_hits: self.prefix_hits,
            prefill_tokens_reused: self.prefill_tokens_reused,
            prefill_tokens_recomputed: self.prefill_tokens_recomputed,
            events: q.events_dispatched(),
            schedule: self.schedule,
            telemetry: self.tel,
        }
    }
}

/// Read-only audit facade: exposes request progress, the KV/slab books of
/// every instance and node (including blocks parked in §5.3 move lists),
/// and per-link bandwidth conservation.
impl AuditView for ServingSystem {
    fn completed_counter(&self) -> u64 {
        self.completed as u64
    }

    fn migrated_counter(&self) -> u64 {
        self.migrated_out
    }

    fn request_count(&self) -> usize {
        self.reqs.len()
    }

    fn request(&self, i: usize) -> ReqAudit<'_> {
        let r = &self.reqs[i];
        ReqAudit {
            produced: r.produced,
            target: r.target_tokens,
            done: r.is_done(),
            token_times: &r.token_times,
        }
    }

    fn memory_audit(&self) -> Option<String> {
        fn parked_by_shape(ml: &ParkedBlocks) -> std::collections::HashMap<ShapeKey, u64> {
            let mut m = std::collections::HashMap::new();
            for (_, batches) in ml.iter() {
                for (shape, blocks) in batches {
                    *m.entry(*shape).or_insert(0) += blocks.len() as u64;
                }
            }
            m
        }
        for (i, p) in self.prefills.iter().enumerate() {
            if let Some(e) = p.gpu_kv.audit(&parked_by_shape(&p.parked)) {
                return Some(format!("prefill {i} gpu kv: {e}"));
            }
        }
        for (i, d) in self.decodes.iter().enumerate() {
            if let Some(e) = d.gpu_kv.audit(&parked_by_shape(&d.parked)) {
                return Some(format!("decode {i} gpu kv: {e}"));
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(e) = n.cpu_kv.audit(&parked_by_shape(&n.cpu_parked)) {
                return Some(format!("node {i} cpu kv: {e}"));
            }
        }
        // Session-prefix double entry: every book entry must be backed by
        // its cache with the recorded token count, and every reserved
        // handle held anywhere must be owned by the book, an outstanding
        // claim, or a dead instance (whose stale holdings are expected).
        for (sess, e) in self.sessions.iter() {
            let h = SessionBook::handle(sess);
            let backed = match e.place {
                SessPlace::DecodeGpu(di) => {
                    let d = &self.decodes[di as usize];
                    d.dead || d.gpu_kv.tokens_of(h) == e.tokens
                }
                SessPlace::Cpu(node) => self.nodes[node as usize].cpu_kv.tokens_of(h) == e.tokens,
            };
            if !backed {
                return Some(format!(
                    "session book entry {sess} ({} tokens at {:?}) not backed by its cache",
                    e.tokens, e.place
                ));
            }
        }
        let owned: std::collections::HashSet<u64> = self
            .sessions
            .iter()
            .map(|(s, _)| s.0)
            .chain(self.sessions.claims().map(|(s, _)| s.0))
            .collect();
        let mut orphan: Option<String> = None;
        let mut check_handles = |label: String, cache: &KvCache, dead: bool| {
            if dead || orphan.is_some() {
                return;
            }
            let mut ids: Vec<RequestId> = cache
                .request_ids()
                .filter(|id| SessionBook::is_handle(*id))
                .collect();
            ids.sort_unstable();
            for id in ids {
                if !owned.contains(&SessionBook::session_of(id).0) {
                    orphan = Some(format!(
                        "{label} holds session handle {} owned by no book entry or claim",
                        SessionBook::session_of(id)
                    ));
                    return;
                }
            }
        };
        for (i, p) in self.prefills.iter().enumerate() {
            check_handles(format!("prefill {i} gpu kv"), &p.gpu_kv, p.dead);
        }
        for (i, d) in self.decodes.iter().enumerate() {
            check_handles(format!("decode {i} gpu kv"), &d.gpu_kv, d.dead);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            check_handles(format!("node {i} cpu kv"), &n.cpu_kv, false);
        }
        orphan
    }

    fn link_audit(&self) -> Option<String> {
        for l in 0..self.fabric.link_count() {
            if let Some(e) = self.fabric.link(LinkId(l as u32)).audit() {
                return Some(e);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::Zoo;
    use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

    fn small_trace(n_models: u32, rate: f64, secs: f64, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed);
        TraceBuilder::new(SimTime::from_secs_f64(secs), LengthDist::sharegpt())
            .uniform_models(&mut rng, n_models, rate)
            .build(&mut rng)
    }

    fn models(n: usize) -> Vec<aegaeon_model::ModelSpec> {
        let zoo = Zoo::standard();
        Zoo::replicate(&zoo.market_band(), n)
    }

    #[test]
    fn single_model_light_load_attains_fully() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let trace = small_trace(1, 0.2, 120.0, 1);
        let r = ServingSystem::run(&cfg, &models(1), &trace);
        assert_eq!(r.completed, r.total_requests, "all requests served");
        let rep = r.attainment(SloSpec::paper_default());
        assert!(rep.ratio() > 0.98, "attainment {}", rep.ratio());
    }

    #[test]
    fn multi_model_pool_serves_more_models_than_gpus() {
        let cfg = AegaeonConfig::small_testbed(2, 2);
        let trace = small_trace(8, 0.05, 180.0, 2);
        let r = ServingSystem::run(&cfg, &models(8), &trace);
        assert!(
            r.completed as f64 >= 0.95 * r.total_requests as f64,
            "completed {}/{}",
            r.completed,
            r.total_requests
        );
        let rep = r.attainment(SloSpec::paper_default());
        assert!(rep.ratio() > 0.7, "attainment {}", rep.ratio());
        assert!(r.scale_count > 0, "pooling must actually switch models");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let trace = small_trace(3, 0.05, 60.0, 3);
        let a = ServingSystem::run(&cfg, &models(3), &trace);
        let b = ServingSystem::run(&cfg, &models(3), &trace);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events, b.events);
        let ta: Vec<_> = a
            .outcomes
            .iter()
            .flat_map(|o| o.token_times.clone())
            .collect();
        let tb: Vec<_> = b
            .outcomes
            .iter()
            .flat_map(|o| o.token_times.clone())
            .collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn t3_beats_t0_under_multi_model_load() {
        let trace = small_trace(6, 0.08, 150.0, 4);
        let mut cfg3 = AegaeonConfig::small_testbed(1, 2);
        cfg3.opts = aegaeon_engine::AutoscaleOpts::t3();
        let mut cfg0 = AegaeonConfig::small_testbed(1, 2);
        cfg0.opts = aegaeon_engine::AutoscaleOpts::t0();
        let r3 = ServingSystem::run(&cfg3, &models(6), &trace);
        let r0 = ServingSystem::run(&cfg0, &models(6), &trace);
        let a3 = r3.attainment(SloSpec::paper_default()).ratio();
        let a0 = r0.attainment(SloSpec::paper_default()).ratio();
        assert!(a3 > a0 + 0.1, "T3 {a3} vs T0 {a0}");
    }

    #[test]
    fn audited_run_is_clean_and_identical() {
        let cfg = AegaeonConfig::small_testbed(2, 2);
        let trace = small_trace(4, 0.06, 90.0, 6);
        let plain = ServingSystem::run(&cfg, &models(4), &trace);
        let (audited, report) = ServingSystem::run_audited(&cfg, &models(4), &trace);
        assert!(report.ok(), "{report}");
        assert!(report.events_checked > 0);
        assert_eq!(plain.events, audited.events, "auditor must not perturb");
        assert_eq!(plain.completed, audited.completed);
    }

    #[test]
    fn audited_run_with_faults_stays_clean() {
        let mut cfg = AegaeonConfig::small_testbed(2, 3);
        cfg.drain_window = SimDur::from_secs(400);
        cfg.faults = crate::chaos::FaultPlan {
            seed: 5,
            crashes: vec![(30.0, InstKind::Decode, 0)],
            link_rate: 0.05,
            link_factor: 0.3,
            link_secs: 4.0,
            stage_oom_rate: 0.03,
            stage_oom_secs: 5.0,
            stall_rate: 0.02,
            stall_secs: 1.0,
            ..crate::chaos::FaultPlan::none()
        };
        let trace = small_trace(4, 0.05, 90.0, 7);
        let (r, report) = ServingSystem::run_audited(&cfg, &models(4), &trace);
        assert!(report.ok(), "{report}");
        assert_eq!(
            r.completed, r.total_requests,
            "chaos must not lose requests"
        );
    }

    #[test]
    fn scale_latencies_are_subsecond_with_t3() {
        let cfg = AegaeonConfig::small_testbed(1, 2);
        let trace = small_trace(6, 0.08, 120.0, 5);
        let r = ServingSystem::run(&cfg, &models(6), &trace);
        assert!(!r.scale_latencies.is_empty());
        let mean: f64 = r.scale_latencies.iter().sum::<f64>() / r.scale_latencies.len() as f64;
        assert!(mean < 1.5, "mean scale latency {mean}s");
    }
}
