//! Algorithm 1: grouped FCFS prefill-phase scheduling.
//!
//! Each prefill instance maintains a job queue of *groups*; a group holds up
//! to `MAX_GPSIZE` requests of one model. An arriving job first tries to
//! join an existing group anywhere in the pool (minimizing preemptive
//! auto-scaling); otherwise a fresh group is appended to the least-loaded
//! queue, where load is the estimated time to finish all pending groups —
//! execution plus auto-scaling. Execution pops one request at a time from
//! the *front* group (prefill batch size is one, §4.2), and group sizes are
//! accumulative: serving a request does not free up its slot, which keeps
//! the schedule close to FCFS.

use std::collections::VecDeque;

use aegaeon_model::ModelId;
use aegaeon_workload::RequestId;

/// A group of same-model prefill jobs.
#[derive(Debug, Clone)]
pub struct Group {
    /// The model all jobs in the group target.
    pub model: ModelId,
    /// Pending requests.
    pub reqs: VecDeque<RequestId>,
    /// Accumulative size (never decremented; caps admission).
    pub accum: u32,
}

/// One prefill instance's job queue.
#[derive(Debug, Clone, Default)]
pub struct PrefillQueue {
    groups: VecDeque<Group>,
}

impl PrefillQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to add `req` to an existing group of `model` with accumulative
    /// size below `max_gpsize` (Algorithm 1, lines 6–8).
    pub fn try_join(&mut self, model: ModelId, req: RequestId, max_gpsize: u32) -> bool {
        for g in &mut self.groups {
            if g.model == model && g.accum < max_gpsize {
                g.reqs.push_back(req);
                g.accum += 1;
                return true;
            }
        }
        false
    }

    /// Appends a fresh group holding `req` (Algorithm 1, line 13).
    pub fn push_group(&mut self, model: ModelId, req: RequestId) {
        let mut reqs = VecDeque::new();
        reqs.push_back(req);
        self.groups.push_back(Group {
            model,
            reqs,
            accum: 1,
        });
    }

    /// Model of the front group, if any.
    pub fn front_model(&self) -> Option<ModelId> {
        self.groups.front().map(|g| g.model)
    }

    /// Model of the group *after* the front (the prefetch target).
    pub fn next_model(&self) -> Option<ModelId> {
        self.groups.get(1).map(|g| g.model)
    }

    /// Pops one request from the front group (Algorithm 1, line 15),
    /// removing the group once drained.
    pub fn pop_request(&mut self) -> Option<(ModelId, RequestId)> {
        loop {
            let front = self.groups.front_mut()?;
            if let Some(r) = front.reqs.pop_front() {
                let model = front.model;
                if front.reqs.is_empty() {
                    self.groups.pop_front();
                }
                return Some((model, r));
            }
            self.groups.pop_front();
        }
    }

    /// Puts a request back at the head (GPU KV backpressure retry).
    pub fn push_front(&mut self, model: ModelId, req: RequestId) {
        match self.groups.front_mut() {
            Some(g) if g.model == model => g.reqs.push_front(req),
            _ => {
                let mut reqs = VecDeque::new();
                reqs.push_back(req);
                self.groups.push_front(Group {
                    model,
                    reqs,
                    accum: 1,
                });
            }
        }
    }

    /// Total queued requests.
    pub fn pending(&self) -> usize {
        self.groups.iter().map(|g| g.reqs.len()).sum()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The queue's load (Algorithm 1, line 9): estimated seconds to finish
    /// every pending group, counting execution (`exec_est` per request) and
    /// one auto-scaling (`switch_est` per model) whenever consecutive groups
    /// change models, starting from `current`.
    pub fn load_estimate(
        &self,
        current: Option<ModelId>,
        mut exec_est: impl FnMut(ModelId, RequestId) -> f64,
        mut switch_est: impl FnMut(ModelId) -> f64,
    ) -> f64 {
        let mut load = 0.0;
        let mut prev = current;
        for g in &self.groups {
            if prev != Some(g.model) {
                load += switch_est(g.model);
            }
            prev = Some(g.model);
            for &r in &g.reqs {
                load += exec_est(g.model, r);
            }
        }
        load
    }

    /// Iterates the groups (introspection/tests).
    pub fn groups(&self) -> impl Iterator<Item = &Group> {
        self.groups.iter()
    }
}

/// Picks the prefill instance for a new request (Algorithm 1): join an
/// existing group if possible, else the least-loaded queue gets a new group.
/// Returns the chosen instance index.
pub fn dispatch_prefill(
    queues: &mut [PrefillQueue],
    currents: &[Option<ModelId>],
    model: ModelId,
    req: RequestId,
    max_gpsize: u32,
    mut exec_est: impl FnMut(ModelId, RequestId) -> f64,
    mut switch_est: impl FnMut(ModelId) -> f64,
) -> usize {
    // Lines 4–8: prioritize existing groups anywhere in the pool.
    for (i, q) in queues.iter_mut().enumerate() {
        if q.try_join(model, req, max_gpsize) {
            return i;
        }
    }
    // Lines 9–13: least-loaded queue gets a fresh group.
    let mut best = 0usize;
    let mut min_load = f64::INFINITY;
    for (i, q) in queues.iter().enumerate() {
        let load = q.load_estimate(currents[i], &mut exec_est, &mut switch_est);
        if load < min_load {
            min_load = load;
            best = i;
        }
    }
    queues[best].push_group(model, req);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(x: u64) -> RequestId {
        RequestId(x)
    }
    fn mid(x: u32) -> ModelId {
        ModelId(x)
    }

    #[test]
    fn join_prefers_existing_group() {
        let mut qs = vec![PrefillQueue::new(), PrefillQueue::new()];
        let currents = vec![None, None];
        let e = |_: ModelId, _: RequestId| 0.1;
        let s = |_: ModelId| 1.0;
        let i0 = dispatch_prefill(&mut qs, &currents, mid(0), rid(0), 8, e, s);
        let i1 = dispatch_prefill(&mut qs, &currents, mid(0), rid(1), 8, e, s);
        assert_eq!(i0, i1, "same-model jobs share a group");
        assert_eq!(qs[i0].groups().count(), 1);
        assert_eq!(qs[i0].pending(), 2);
    }

    #[test]
    fn full_group_spills_to_least_loaded() {
        let mut qs = vec![PrefillQueue::new(), PrefillQueue::new()];
        let currents = vec![None, None];
        let e = |_: ModelId, _: RequestId| 0.1;
        let s = |_: ModelId| 1.0;
        for k in 0..2 {
            dispatch_prefill(&mut qs, &currents, mid(0), rid(k), 2, e, s);
        }
        // Group at capacity (2); the third same-model job must open a new
        // group on the *other*, empty queue.
        let i = dispatch_prefill(&mut qs, &currents, mid(0), rid(2), 2, e, s);
        assert_eq!(qs[0].pending() + qs[1].pending(), 3);
        assert_eq!(qs[i].groups().count(), 1);
        assert_ne!(i, 0);
    }

    #[test]
    fn accumulative_size_preserves_fcfs() {
        let mut q = PrefillQueue::new();
        assert!(!q.try_join(mid(0), rid(0), 8));
        q.push_group(mid(0), rid(0));
        assert!(q.try_join(mid(0), rid(1), 2));
        // Serve one; accumulative size stays 2, so a third job may NOT join.
        let (m, r) = q.pop_request().unwrap();
        assert_eq!((m, r), (mid(0), rid(0)));
        assert!(!q.try_join(mid(0), rid(2), 2));
    }

    #[test]
    fn load_counts_switches_between_model_changes() {
        let mut q = PrefillQueue::new();
        q.push_group(mid(0), rid(0));
        q.push_group(mid(1), rid(1));
        q.push_group(mid(1), rid(2));
        q.push_group(mid(0), rid(3));
        // current = Some(0): switches at m1 and back at m0 → 2 switches.
        let load = q.load_estimate(Some(mid(0)), |_, _| 0.5, |_| 10.0);
        assert!(
            (load - (4.0 * 0.5 + 2.0 * 10.0)).abs() < 1e-9,
            "load {load}"
        );
        // current = None: also pay the initial scale to m0.
        let load2 = q.load_estimate(None, |_, _| 0.5, |_| 10.0);
        assert!((load2 - (2.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn pop_drains_groups_in_order() {
        let mut q = PrefillQueue::new();
        q.push_group(mid(0), rid(0));
        q.try_join(mid(0), rid(1), 8);
        q.push_group(mid(1), rid(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop_request()).collect();
        assert_eq!(
            order,
            vec![(mid(0), rid(0)), (mid(0), rid(1)), (mid(1), rid(2))]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn push_front_rejoins_front_group() {
        let mut q = PrefillQueue::new();
        q.push_group(mid(0), rid(0));
        q.try_join(mid(0), rid(1), 8);
        let (m, r) = q.pop_request().unwrap();
        q.push_front(m, r);
        assert_eq!(q.pop_request().unwrap(), (mid(0), rid(0)));
        // A different model pushed to the front opens its own group.
        q.push_front(mid(5), rid(9));
        assert_eq!(q.front_model(), Some(mid(5)));
    }

    #[test]
    fn next_model_is_the_prefetch_target() {
        let mut q = PrefillQueue::new();
        assert_eq!(q.next_model(), None);
        q.push_group(mid(0), rid(0));
        q.push_group(mid(3), rid(1));
        assert_eq!(q.next_model(), Some(mid(3)));
    }
}
