//! Sharded conservative-parallel execution of the serving system.
//!
//! A sharded run partitions one [`ServingSystem`] simulation into per-node
//! shards: each shard is a complete serving system over a contiguous slice
//! of the cluster's nodes, with its own indexed 4-ary event queue, GPU
//! instances, slab/KV books, RNG stream, materialized fault schedule, and
//! auditor view. Requests are routed to their *home shard* by model
//! (`model.0 % shards`), so a model's auto-scaling state never straddles a
//! shard boundary.
//!
//! # Synchronization
//!
//! Shards advance in bulk-synchronous conservative windows computed by
//! [`aegaeon_sim::GrantClock`]: every window, each shard processes events
//! strictly below `min(next due across shards) + lookahead`, then the
//! coordinator exchanges boundary events at the barrier. The lookahead is
//! the minimum timestamp increment of any cross-shard interaction. In this
//! system the only *dynamic* cross-shard coupling is a failover handoff —
//! a shard that lost an entire prefill or decoding tier re-routes stranded
//! requests to a peer shard, which re-serves them from scratch after the
//! proxy's failover detection window (`cfg.failover_latency`, itself a
//! ceiling on the MetaStore sync and link latencies on that path). Ingress
//! arrivals are trace-known up front and carry no lookahead constraint.
//! Null-message style, no rollback: a handoff emitted at `t` is received
//! at `t + lookahead >= grant`, provably outside every shard's processed
//! past (see `aegaeon_sim::horizon` for the argument).
//!
//! # Determinism
//!
//! A sharded run is bit-identical across worker-thread counts: shard
//! execution inside a window is embarrassingly parallel (disjoint state),
//! and everything order-sensitive — window boundaries, handoff delivery
//! order, result merging — happens on the coordinator in fixed shard
//! order. The *serial reference* for the differential tests is therefore
//! the sharded engine on one thread; the single-queue engine is a
//! different (also deterministic) interleaving of the same workload, with
//! globally shared RNG draws and routing scans that no parallel execution
//! could reproduce without serializing every event.

use std::sync::mpsc;

use aegaeon_metrics::RequestOutcome;
use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::{GrantClock, SimDur, SimTime, TraceLog};
use aegaeon_workload::{Request, RequestId, SessionId, Trace};

use crate::audit::{AuditReport, InvariantAuditor, Violation};
use crate::config::AegaeonConfig;
use crate::result::RunResult;
use crate::session::ServingSession;

/// A request handed off across a shard boundary after a total tier loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Simulated instant the owning shard gave the request up.
    pub emitted: SimTime,
    /// Target model (global id: every shard deploys the full model list).
    pub model: ModelId,
    /// Prompt length.
    pub input_tokens: u32,
    /// Oracle output length.
    pub output_tokens: u32,
    /// Agentic session identity, preserved across the migration. The
    /// destination shard holds no retained KV for the session, so the
    /// migrated turn recomputes its prefix; later turns of the same session
    /// still route to the home shard and are unaffected.
    pub session: SessionId,
    /// Zero-based turn index within the session.
    pub turn_index: u32,
    /// Shared-prefix length of the migrated turn.
    pub prefix_tokens: u32,
    /// Trace index of the request *in the emitting shard*.
    pub local_idx: u32,
}

/// The static partition of a configuration + trace into shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Conservative lookahead (minimum cross-shard message latency).
    pub lookahead: SimDur,
    /// Per-shard configurations (sub-cluster, prefill split, derived seed,
    /// remapped fault plan).
    pub cfgs: Vec<AegaeonConfig>,
    /// Per-shard sub-traces (local request ids, global model ids, global
    /// horizon).
    pub traces: Vec<Trace>,
    /// Per shard: local trace index → global trace index.
    pub global_ids: Vec<Vec<u64>>,
    /// Per global request: `(home shard, home-local trace index)`.
    pub home_slot: Vec<(usize, u32)>,
}

/// SplitMix64 mix of the base seed and a shard index, so shard RNG and
/// fault streams decorrelate without depending on shard count elsewhere.
/// (Same mixing as the bench sweep's per-point seeds.)
fn derive_shard_seed(base: u64, shard: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(shard.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl ShardPlan {
    /// The home shard of a model under `shards`-way partitioning.
    pub fn home_shard(model: ModelId, shards: usize) -> usize {
        model.0 as usize % shards
    }

    /// Partitions `cfg` + `trace` into `shards` shards over contiguous
    /// node groups.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the node count, if any shard
    /// would be left without both a prefill and a decoding instance, or if
    /// an explicit fault-plan crash names an instance index out of range.
    pub fn partition(cfg: &AegaeonConfig, trace: &Trace, shards: usize) -> ShardPlan {
        let nodes = cfg.cluster.nodes.len();
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= nodes,
            "cannot split {nodes} node(s) into {shards} shards"
        );
        let total_inst = cfg.instance_count();
        let tp = cfg.tp;

        // Contiguous node groups, sizes as even as possible.
        let base = nodes / shards;
        let rem = nodes % shards;
        let mut node_ranges = Vec::with_capacity(shards);
        let mut lo = 0usize;
        for s in 0..shards {
            let count = base + usize::from(s < rem);
            node_ranges.push(lo..lo + count);
            lo += count;
        }

        // Proportional prefill split, clamped so every shard keeps at least
        // one prefill and one decoding instance.
        let inst_counts: Vec<usize> = node_ranges
            .iter()
            .map(|r| {
                cfg.cluster.nodes[r.clone()]
                    .iter()
                    .map(|n| (n.gpus / tp) as usize)
                    .sum()
            })
            .collect();
        let prefill_counts: Vec<usize> = inst_counts
            .iter()
            .map(|&inst| {
                assert!(inst >= 2, "a shard needs at least two instances");
                let ideal = (cfg.prefill_instances * inst + total_inst / 2) / total_inst;
                ideal.clamp(1, inst - 1)
            })
            .collect();

        // Global → shard-local instance index maps for explicit crashes.
        let prefill_offsets: Vec<usize> = prefill_counts
            .iter()
            .scan(0usize, |acc, &p| {
                let off = *acc;
                *acc += p;
                Some(off)
            })
            .collect();
        let decode_offsets: Vec<usize> = inst_counts
            .iter()
            .zip(&prefill_counts)
            .scan(0usize, |acc, (&inst, &p)| {
                let off = *acc;
                *acc += inst - p;
                Some(off)
            })
            .collect();
        let locate = |kind: crate::events::InstKind, idx: u32| -> (usize, u32) {
            let (offs, counts): (&[usize], Vec<usize>) = match kind {
                crate::events::InstKind::Prefill => (&prefill_offsets, prefill_counts.clone()),
                crate::events::InstKind::Decode => (
                    &decode_offsets,
                    inst_counts
                        .iter()
                        .zip(&prefill_counts)
                        .map(|(&i, &p)| i - p)
                        .collect(),
                ),
            };
            for s in 0..shards {
                let lo = offs[s];
                if (idx as usize) >= lo && (idx as usize) < lo + counts[s] {
                    return (s, (idx as usize - lo) as u32);
                }
            }
            panic!("fault plan names {kind:?} instance {idx}, out of range");
        };

        let mut cfgs = Vec::with_capacity(shards);
        for s in 0..shards {
            let mut sub = cfg.clone();
            sub.cluster = aegaeon_gpu::ClusterSpec {
                nodes: cfg.cluster.nodes[node_ranges[s].clone()].to_vec(),
            };
            sub.prefill_instances = prefill_counts[s];
            sub.seed = derive_shard_seed(cfg.seed, s as u64);
            // Stochastic fault processes redraw per shard (decorrelated via
            // the derived seed); explicit crashes are remapped below.
            sub.faults.crashes = Vec::new();
            cfgs.push(sub);
        }
        for &(secs, kind, idx) in &cfg.faults.crashes {
            let (s, local) = locate(kind, idx);
            cfgs[s].faults.crashes.push((secs, kind, local));
        }

        // Home-shard sub-traces with local request ids.
        let mut traces: Vec<Trace> = (0..shards)
            .map(|_| Trace {
                requests: Vec::new(),
                horizon: trace.horizon,
            })
            .collect();
        let mut global_ids: Vec<Vec<u64>> = vec![Vec::new(); shards];
        let mut home_slot = Vec::with_capacity(trace.len());
        // Sessions are single-model by construction (the lowering pins one
        // model per AgentSession), so model-home routing is automatically
        // session-stable. Check it anyway: a hand-built trace whose session
        // straddles models would otherwise scatter its turns across shards
        // and silently miss every retained prefix.
        let mut session_home: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (g, r) in trace.requests.iter().enumerate() {
            let s = Self::home_shard(r.model, shards);
            if r.session.is_some() {
                let prev = *session_home.entry(r.session.0).or_insert(s);
                assert_eq!(
                    prev, s,
                    "session {} straddles shards {prev} and {s}: sessions must be single-model",
                    r.session.0
                );
            }
            let local = traces[s].requests.len();
            traces[s].requests.push(Request {
                id: RequestId(local as u64),
                model: r.model,
                arrival_ns: r.arrival_ns,
                input_tokens: r.input_tokens,
                output_tokens: r.output_tokens,
                session: r.session,
                turn_index: r.turn_index,
                prefix_tokens: r.prefix_tokens,
            });
            global_ids[s].push(g as u64);
            home_slot.push((s, local as u32));
        }

        ShardPlan {
            lookahead: cfg.failover_latency,
            cfgs,
            traces,
            global_ids,
            home_slot,
        }
    }
}

/// Runs a sharded simulation on `threads` worker threads and returns the
/// merged result. With `cfg.audit` set, the run is audited and panics on
/// any invariant violation, mirroring [`ServingSystem::run`].
///
/// The merged [`RunResult::fingerprint`] is a pure function of
/// `(cfg, models, trace, shards)` — worker-thread count cannot perturb it.
///
/// [`ServingSystem::run`]: crate::system::ServingSystem::run
pub fn run_sharded(
    cfg: &AegaeonConfig,
    models: &[ModelSpec],
    trace: &Trace,
    shards: usize,
    threads: usize,
) -> RunResult {
    if cfg.audit {
        let (result, report) = run_sharded_audited(cfg, models, trace, shards, threads);
        assert!(
            report.ok(),
            "invariant violation (reproduce with seed={} plan=\"{}\" shards={shards}):\n{report}",
            cfg.seed,
            cfg.faults,
        );
        result
    } else {
        run_inner(cfg, models, trace, shards, threads, false).0
    }
}

/// [`run_sharded`] with the invariant auditor installed on every shard;
/// returns the merged audit report alongside the result.
pub fn run_sharded_audited(
    cfg: &AegaeonConfig,
    models: &[ModelSpec],
    trace: &Trace,
    shards: usize,
    threads: usize,
) -> (RunResult, AuditReport) {
    let (result, report) = run_inner(cfg, models, trace, shards, threads, true);
    (result, report.expect("auditor was installed"))
}

/// Coordinator state for one sharded run.
struct Coordinator<'p> {
    sessions: Vec<ServingSession>,
    plan: &'p ShardPlan,
    clock: GrantClock,
    /// Original sub-trace length per shard (locals beyond it are migrants).
    base_len: Vec<usize>,
    /// Per shard: migrant local index (minus base) → global trace index.
    migrant_globals: Vec<Vec<u64>>,
    /// Per global request: the shard + local index owning its outcome.
    final_slot: Vec<(usize, u32)>,
}

impl Coordinator<'_> {
    /// One barrier: drain every shard's outbox in shard order and deliver
    /// each handoff to the next shard (cyclic) at `emitted + lookahead`.
    /// Delivery order is part of the deterministic contract: it fixes the
    /// destination shard's trace growth and event-queue tie-breaking.
    fn exchange(&mut self) {
        let shards = self.sessions.len();
        for src in 0..shards {
            for h in self.sessions[src].take_handoffs() {
                let g = if (h.local_idx as usize) < self.base_len[src] {
                    self.plan.global_ids[src][h.local_idx as usize]
                } else {
                    self.migrant_globals[src][h.local_idx as usize - self.base_len[src]]
                };
                let dst = (src + 1) % shards;
                let at = h.emitted + self.clock.lookahead();
                let local = self.sessions[dst].migrate_in(
                    at,
                    h.model,
                    h.input_tokens,
                    h.output_tokens,
                    h.session,
                    h.turn_index,
                    h.prefix_tokens,
                );
                debug_assert_eq!(
                    local as usize,
                    self.base_len[dst] + self.migrant_globals[dst].len(),
                    "migrants are admitted densely"
                );
                self.migrant_globals[dst].push(g);
                self.final_slot[g as usize] = (dst, local);
            }
        }
    }

    /// The next conservative window, or `None` when every shard is drained
    /// or halted.
    fn next_window(&mut self) -> Option<aegaeon_sim::GrantWindow> {
        let due: Vec<Option<SimTime>> = self
            .sessions
            .iter_mut()
            .map(|s| if s.halted() { None } else { s.next_due() })
            .collect();
        self.clock.next_window(due)
    }

    /// Window loop, all shards stepped on the coordinator thread.
    fn run_serial(&mut self) {
        while let Some(w) = self.next_window() {
            for s in self.sessions.iter_mut() {
                if !s.halted() {
                    s.step_until(w.limit);
                }
            }
            self.exchange();
        }
    }

    /// Window loop with `workers` persistent worker threads. Shards are
    /// dealt round-robin into per-worker batches each window and handed
    /// over by value; the coordinator blocks for every batch before the
    /// exchange, which is the synchronization barrier.
    fn run_parallel(&mut self, workers: usize) {
        let shards = self.sessions.len();
        std::thread::scope(|scope| {
            let mut task_txs = Vec::with_capacity(workers);
            let (back_tx, back_rx) = mpsc::channel::<Vec<(usize, ServingSession)>>();
            for _ in 0..workers {
                let (tx, rx) = mpsc::channel::<(Vec<(usize, ServingSession)>, SimTime)>();
                let back = back_tx.clone();
                scope.spawn(move || {
                    while let Ok((mut batch, limit)) = rx.recv() {
                        for (_, s) in batch.iter_mut() {
                            if !s.halted() {
                                s.step_until(limit);
                            }
                        }
                        if back.send(batch).is_err() {
                            break;
                        }
                    }
                });
                task_txs.push(tx);
            }
            while let Some(w) = self.next_window() {
                let mut batches: Vec<Vec<(usize, ServingSession)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (i, s) in self.sessions.drain(..).enumerate() {
                    batches[i % workers].push((i, s));
                }
                for (tx, batch) in task_txs.iter().zip(batches) {
                    tx.send((batch, w.limit)).expect("worker alive");
                }
                let mut slots: Vec<Option<ServingSession>> = (0..shards).map(|_| None).collect();
                for _ in 0..workers {
                    let batch = back_rx.recv().expect("worker alive");
                    for (i, s) in batch {
                        slots[i] = Some(s);
                    }
                }
                self.sessions = slots
                    .into_iter()
                    .map(|s| s.expect("every shard returned"))
                    .collect();
                self.exchange();
            }
            drop(task_txs); // workers drain and exit before the scope joins
        });
    }
}

fn run_inner(
    cfg: &AegaeonConfig,
    models: &[ModelSpec],
    trace: &Trace,
    shards: usize,
    threads: usize,
    audit: bool,
) -> (RunResult, Option<AuditReport>) {
    let plan = ShardPlan::partition(cfg, trace, shards);
    let sessions: Vec<ServingSession> = plan
        .cfgs
        .iter()
        .zip(&plan.traces)
        .map(|(c, t)| {
            let mut s = ServingSession::closed(c, models, t);
            s.enable_shard_mode();
            if audit {
                s.install_auditor(Box::new(InvariantAuditor::new()));
            }
            s
        })
        .collect();
    let mut coord = Coordinator {
        base_len: plan.traces.iter().map(|t| t.len()).collect(),
        migrant_globals: vec![Vec::new(); shards],
        final_slot: plan.home_slot.clone(),
        clock: GrantClock::new(plan.lookahead),
        plan: &plan,
        sessions,
    };
    let workers = threads.max(1).min(shards);
    if workers <= 1 {
        coord.run_serial();
    } else {
        coord.run_parallel(workers);
    }
    let finished: Vec<(RunResult, Option<AuditReport>)> =
        coord.sessions.into_iter().map(|s| s.finish()).collect();
    merge(models, trace, finished, &coord.final_slot)
}

/// Merges per-shard results into one [`RunResult`], deterministically in
/// shard order. Per-request rows are stitched back in *global* trace order,
/// each taken from the shard that finally owned the request (its home
/// shard, or the last shard it migrated to); concatenated per-shard series
/// (GPU busy, fragmentation, utilization samples) follow the contiguous
/// node partition, so GPU ordering matches the unsharded cluster. The
/// merged result carries disabled observer artifacts (schedule, telemetry);
/// both are excluded from fingerprints.
fn merge(
    models: &[ModelSpec],
    trace: &Trace,
    finished: Vec<(RunResult, Option<AuditReport>)>,
    final_slot: &[(usize, u32)],
) -> (RunResult, Option<AuditReport>) {
    let (results, reports): (Vec<RunResult>, Vec<Option<AuditReport>>) =
        finished.into_iter().unzip();

    let n = trace.len();
    let mut outcomes = Vec::with_capacity(n);
    let mut kv_sync = Vec::with_capacity(n);
    for (g, r) in trace.requests.iter().enumerate() {
        let (s, local) = final_slot[g];
        let shard = &results[s];
        let o = &shard.outcomes[local as usize];
        outcomes.push(RequestOutcome {
            id: RequestId(g as u64),
            model: r.model,
            // A migrated request keeps its original arrival: failover is
            // the system's fault, not the client's.
            arrival: r.arrival(),
            token_times: o.token_times.clone(),
            target_tokens: r.output_tokens,
        });
        kv_sync.push(shard.kv_sync_per_request[local as usize]);
    }

    let mut breakdown = aegaeon_metrics::BreakdownAcc::new();
    for r in &results {
        breakdown.merge(&r.breakdown);
    }
    let merged = RunResult {
        outcomes,
        horizon: trace.horizon,
        end_time: results
            .iter()
            .map(|r| r.end_time)
            .max()
            .unwrap_or(SimTime::ZERO),
        breakdown,
        scale_latencies: results
            .iter()
            .flat_map(|r| r.scale_latencies.iter().copied())
            .collect(),
        kv_sync_per_request: kv_sync,
        frag_rows: results
            .iter()
            .flat_map(|r| r.frag_rows.iter().cloned())
            .collect(),
        gpu_busy: results
            .iter()
            .flat_map(|r| r.gpu_busy.iter().copied())
            .collect(),
        util_samples: results
            .iter()
            .flat_map(|r| r.util_samples.iter().cloned())
            .collect(),
        completed: results.iter().map(|r| r.completed).sum(),
        total_requests: n,
        model_count: models.len(),
        scale_count: results.iter().map(|r| r.scale_count).sum(),
        prefetch_hits: results.iter().map(|r| r.prefetch_hits).sum(),
        swaps: results.iter().map(|r| r.swaps).sum(),
        prefix_hits: results.iter().map(|r| r.prefix_hits).sum(),
        prefill_tokens_reused: results.iter().map(|r| r.prefill_tokens_reused).sum(),
        prefill_tokens_recomputed: results.iter().map(|r| r.prefill_tokens_recomputed).sum(),
        events: results.iter().map(|r| r.events).sum(),
        schedule: TraceLog::disabled(),
        telemetry: aegaeon_telemetry::Telemetry::disabled(),
    };

    let report = if reports.iter().all(|r| r.is_none()) {
        None
    } else {
        let mut merged_report = AuditReport::default();
        for (s, rep) in reports.into_iter().enumerate() {
            let rep = rep.expect("all shards audited alike");
            merged_report.events_checked += rep.events_checked;
            merged_report.rejections += rep.rejections;
            merged_report
                .violations
                .extend(rep.violations.into_iter().map(|v| Violation {
                    at: v.at,
                    what: format!("shard {s}: {}", v.what),
                }));
        }
        Some(merged_report)
    };
    (merged, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::InstKind;
    use aegaeon_gpu::{GpuSpec, NodeSpec};

    fn four_node_cfg() -> AegaeonConfig {
        let mut cfg = AegaeonConfig::paper_testbed();
        cfg.cluster = aegaeon_gpu::ClusterSpec::homogeneous(
            4,
            NodeSpec {
                gpus: 4,
                gpu: GpuSpec::h800(),
                dram_bytes: 1 << 40,
                nic_bw: 25e9,
            },
        );
        cfg.prefill_instances = 6;
        cfg
    }

    fn toy_trace(n: usize, models: u32) -> Trace {
        let requests = (0..n)
            .map(|i| {
                Request::single(
                    RequestId(i as u64),
                    ModelId(i as u32 % models),
                    1_000_000_000 * (i as u64 + 1),
                    64,
                    8,
                )
            })
            .collect();
        Trace {
            requests,
            horizon: SimTime::from_secs_f64(60.0),
        }
    }

    #[test]
    fn partition_splits_nodes_contiguously_and_prefill_proportionally() {
        let cfg = four_node_cfg();
        let plan = ShardPlan::partition(&cfg, &toy_trace(12, 6), 4);
        assert_eq!(plan.cfgs.len(), 4);
        for sub in &plan.cfgs {
            assert_eq!(sub.cluster.nodes.len(), 1);
            // 6 prefill over 16 instances → 1–2 per 4-instance shard, and
            // every shard keeps at least one decoder.
            assert!(sub.prefill_instances >= 1);
            assert!(sub.prefill_instances < sub.instance_count());
        }
        let seeds: std::collections::HashSet<u64> = plan.cfgs.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 4, "per-shard seeds decorrelate");
    }

    #[test]
    fn partition_routes_requests_by_model_home() {
        let cfg = four_node_cfg();
        let trace = toy_trace(20, 8);
        let plan = ShardPlan::partition(&cfg, &trace, 4);
        let total: usize = plan.traces.iter().map(|t| t.len()).sum();
        assert_eq!(total, 20);
        for (s, t) in plan.traces.iter().enumerate() {
            for (local, r) in t.requests.iter().enumerate() {
                assert_eq!(ShardPlan::home_shard(r.model, 4), s);
                assert_eq!(r.id.0 as usize, local, "local ids are dense");
                let g = plan.global_ids[s][local] as usize;
                assert_eq!(trace.requests[g].model, r.model);
                assert_eq!(plan.home_slot[g], (s, local as u32));
            }
            assert_eq!(t.horizon, trace.horizon, "fault horizon is global");
        }
    }

    #[test]
    fn partition_remaps_explicit_crashes_to_local_indices() {
        let mut cfg = four_node_cfg();
        // Global prefill index space is the concatenation of per-shard
        // prefill tiers; the plan above gives shards [2, 1, 2, 1] prefills
        // (6 proportionally over instance counts [4, 4, 4, 4] rounds to 2
        // then clamps... computed below from the plan itself).
        cfg.faults.crashes = vec![(5.0, InstKind::Prefill, 0)];
        let plan = ShardPlan::partition(&cfg, &toy_trace(4, 4), 4);
        assert_eq!(
            plan.cfgs[0].faults.crashes,
            vec![(5.0, InstKind::Prefill, 0)]
        );
        for sub in &plan.cfgs[1..] {
            assert!(sub.faults.crashes.is_empty());
        }
        // A decode crash on the last shard's tier lands there with a local
        // index.
        let decode_total: usize = plan
            .cfgs
            .iter()
            .map(|c| c.instance_count() - c.prefill_instances)
            .sum();
        let mut cfg2 = four_node_cfg();
        cfg2.faults.crashes = vec![(7.0, InstKind::Decode, decode_total as u32 - 1)];
        let plan2 = ShardPlan::partition(&cfg2, &toy_trace(4, 4), 4);
        let last = plan2.cfgs.last().unwrap();
        assert_eq!(last.faults.crashes.len(), 1);
        let (secs, kind, local) = last.faults.crashes[0];
        assert_eq!((secs, kind), (7.0, InstKind::Decode));
        assert!((local as usize) < last.instance_count() - last.prefill_instances);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_out_of_range_crash() {
        let mut cfg = four_node_cfg();
        cfg.faults.crashes = vec![(5.0, InstKind::Prefill, 99)];
        let _ = ShardPlan::partition(&cfg, &toy_trace(4, 4), 4);
    }

    #[test]
    fn single_shard_run_matches_itself_and_completes() {
        use aegaeon_model::Zoo;
        let cfg = AegaeonConfig::small_testbed(2, 2);
        let zoo = Zoo::standard();
        let models = Zoo::replicate(&zoo.market_band(), 4);
        let trace = toy_trace(10, 4);
        let a = run_sharded(&cfg, &models, &trace, 1, 1);
        let b = run_sharded(&cfg, &models, &trace, 1, 4);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.completed, 10);
        assert_eq!(a.total_requests, 10);
    }
}
