//! The proxy layer's shared metadata store (Figure 5's "Status Sync").
//!
//! Aegaeon's proxy synchronizes request metadata and instance status with
//! the serving instances through a shared in-memory store (Redis in the
//! paper) "to ensure load balancing and fault tolerance". This module
//! models that component: instances publish heartbeats and load hints; the
//! proxy reads them with a small RPC latency and declares an instance dead
//! after missing heartbeats.


use aegaeon_sim::{FxHashMap, SimDur, SimTime};

use crate::events::InstRef;

/// Published status of one serving instance.
#[derive(Debug, Clone, Copy)]
pub struct InstanceStatus {
    /// Last heartbeat instant.
    pub last_heartbeat: SimTime,
    /// Load hint the instance published (queue/work-list pressure).
    pub load: f64,
    /// Administratively marked dead (confirmed failure).
    pub confirmed_dead: bool,
}

/// The shared metadata store.
#[derive(Debug, Clone)]
pub struct MetaStore {
    rpc_latency: SimDur,
    heartbeat_period: SimDur,
    /// Heartbeats missed before an instance is presumed dead.
    miss_threshold: u32,
    status: FxHashMap<InstRef, InstanceStatus>,
    reads: u64,
    writes: u64,
    /// End of the current metadata-path stall window (chaos injection).
    stall_until: SimTime,
}

impl MetaStore {
    /// Creates a store; `rpc_latency` is charged per proxy access.
    pub fn new(rpc_latency: SimDur, heartbeat_period: SimDur) -> MetaStore {
        MetaStore {
            rpc_latency,
            heartbeat_period,
            miss_threshold: 2,
            status: FxHashMap::default(),
            reads: 0,
            writes: 0,
            stall_until: SimTime::ZERO,
        }
    }

    /// Per-access RPC latency the proxy pays.
    pub fn rpc_latency(&self) -> SimDur {
        self.rpc_latency
    }

    /// Time from an instance dying to the proxy presuming it dead:
    /// `miss_threshold` heartbeat periods plus one RPC.
    pub fn detection_latency(&self) -> SimDur {
        self.heartbeat_period * self.miss_threshold as u64 + self.rpc_latency
    }

    /// An instance publishes its heartbeat and load hint.
    pub fn heartbeat(&mut self, inst: InstRef, now: SimTime, load: f64) {
        self.writes += 1;
        let e = self.status.entry(inst).or_insert(InstanceStatus {
            last_heartbeat: now,
            load,
            confirmed_dead: false,
        });
        if !e.confirmed_dead {
            e.last_heartbeat = now;
            e.load = load;
        }
    }

    /// Marks an instance dead administratively (failure confirmed).
    pub fn confirm_dead(&mut self, inst: InstRef) {
        self.writes += 1;
        let e = self.status.entry(inst).or_insert(InstanceStatus {
            last_heartbeat: SimTime::ZERO,
            load: 0.0,
            confirmed_dead: true,
        });
        e.confirmed_dead = true;
    }

    /// True if the proxy should treat the instance as dead at `now`:
    /// confirmed, or silent for more than the miss threshold.
    pub fn presumed_dead(&mut self, inst: InstRef, now: SimTime) -> bool {
        self.reads += 1;
        match self.status.get(&inst) {
            None => false, // never registered: assume booting
            Some(s) => {
                s.confirmed_dead
                    || now.saturating_since(s.last_heartbeat)
                        > self.heartbeat_period * self.miss_threshold as u64
            }
        }
    }

    /// Load hint for an instance (`None` if unknown or dead).
    pub fn load_hint(&mut self, inst: InstRef, now: SimTime) -> Option<f64> {
        if self.presumed_dead(inst, now) {
            return None;
        }
        self.reads += 1;
        self.status.get(&inst).map(|s| s.load)
    }

    /// Opens (or extends) a stall window on the metadata path until
    /// `until`: dispatches arriving inside the window must retry with
    /// backoff instead of reading stale state.
    pub fn begin_stall(&mut self, until: SimTime) {
        self.stall_until = self.stall_until.max(until);
    }

    /// True while the metadata path is stalled at `now`.
    pub fn stalled(&self, now: SimTime) -> bool {
        now < self.stall_until
    }

    /// Retry backoff for a dispatch that found the store stalled:
    /// exponential in the attempt number, starting from one RPC latency and
    /// capped at 1024 RPCs (~0.5 s at the default 500 µs) so a long stall
    /// cannot push retries past the drain window.
    pub fn retry_backoff(&self, attempt: u32) -> SimDur {
        self.rpc_latency * (1u64 << attempt.min(10))
    }

    /// `(reads, writes)` access counters (Figure 14's control-plane cost).
    pub fn stats(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Instances currently presumed alive at `now`.
    pub fn alive(&mut self, now: SimTime) -> Vec<InstRef> {
        let mut keys: Vec<InstRef> = self.status.keys().copied().collect();
        keys.sort(); // deterministic order despite the hash map
        keys.into_iter()
            .filter(|&k| !self.presumed_dead(k, now))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn store() -> MetaStore {
        MetaStore::new(SimDur::from_micros(500), SimDur::from_secs(1))
    }

    #[test]
    fn fresh_heartbeats_keep_instances_alive() {
        let mut m = store();
        let a = InstRef::prefill(0);
        m.heartbeat(a, secs(0.0), 1.0);
        m.heartbeat(a, secs(1.0), 2.0);
        assert!(!m.presumed_dead(a, secs(1.5)));
        assert_eq!(m.load_hint(a, secs(1.5)), Some(2.0));
    }

    #[test]
    fn silence_beyond_threshold_presumes_death() {
        let mut m = store();
        let a = InstRef::decode(3);
        m.heartbeat(a, secs(0.0), 1.0);
        assert!(!m.presumed_dead(a, secs(2.0)), "exactly at threshold");
        assert!(m.presumed_dead(a, secs(2.1)));
        assert_eq!(m.load_hint(a, secs(2.1)), None);
    }

    #[test]
    fn confirmed_death_is_sticky() {
        let mut m = store();
        let a = InstRef::decode(0);
        m.heartbeat(a, secs(0.0), 1.0);
        m.confirm_dead(a);
        // A late heartbeat from a zombie must not resurrect it.
        m.heartbeat(a, secs(0.5), 1.0);
        assert!(m.presumed_dead(a, secs(0.6)));
    }

    #[test]
    fn detection_latency_is_two_periods_plus_rpc() {
        let m = store();
        let d = m.detection_latency().as_secs_f64();
        assert!((d - 2.0005).abs() < 1e-9, "{d}");
    }

    #[test]
    fn alive_lists_only_live_instances() {
        let mut m = store();
        let a = InstRef::prefill(0);
        let b = InstRef::decode(1);
        m.heartbeat(a, secs(10.0), 0.0);
        m.heartbeat(b, secs(0.0), 0.0);
        let alive = m.alive(secs(10.5));
        assert_eq!(alive, vec![a]);
    }

    #[test]
    fn unknown_instances_are_assumed_booting() {
        let mut m = store();
        assert!(!m.presumed_dead(InstRef::decode(9), secs(100.0)));
    }

    #[test]
    fn stall_window_extends_but_never_shrinks() {
        let mut m = store();
        assert!(!m.stalled(secs(0.0)));
        m.begin_stall(secs(5.0));
        assert!(m.stalled(secs(4.9)));
        assert!(!m.stalled(secs(5.0)), "window end is exclusive");
        m.begin_stall(secs(3.0)); // shorter overlapping stall: no-op
        assert!(m.stalled(secs(4.9)));
        m.begin_stall(secs(8.0));
        assert!(m.stalled(secs(7.9)));
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let m = store();
        let rpc = m.rpc_latency().as_secs_f64();
        assert_eq!(m.retry_backoff(1).as_secs_f64(), rpc * 2.0);
        assert_eq!(m.retry_backoff(3).as_secs_f64(), rpc * 8.0);
        let capped = m.retry_backoff(10);
        assert_eq!(m.retry_backoff(40), capped, "backoff must be capped");
        assert!(capped.as_secs_f64() < 1.0);
    }
}
