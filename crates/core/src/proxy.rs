//! The proxy layer's shared metadata store (Figure 5's "Status Sync").
//!
//! Aegaeon's proxy synchronizes request metadata and instance status with
//! the serving instances through a shared in-memory store (Redis in the
//! paper) "to ensure load balancing and fault tolerance". This module
//! models that component: instances publish heartbeats and load hints; the
//! proxy reads them with a small RPC latency and declares an instance dead
//! after missing heartbeats.

use aegaeon_model::ModelId;
use aegaeon_sim::{FxHashMap, SimDur, SimTime};

use crate::events::InstRef;

/// Published status of one serving instance.
#[derive(Debug, Clone, Copy)]
pub struct InstanceStatus {
    /// Last heartbeat instant.
    pub last_heartbeat: SimTime,
    /// Load hint the instance published (queue/work-list pressure).
    pub load: f64,
    /// Administratively marked dead (confirmed failure).
    pub confirmed_dead: bool,
}

/// The shared metadata store.
#[derive(Debug, Clone)]
pub struct MetaStore {
    rpc_latency: SimDur,
    heartbeat_period: SimDur,
    /// Heartbeats missed before an instance is presumed dead.
    miss_threshold: u32,
    status: FxHashMap<InstRef, InstanceStatus>,
    reads: u64,
    writes: u64,
    /// End of the current metadata-path stall window (chaos injection).
    stall_until: SimTime,
}

impl MetaStore {
    /// Creates a store; `rpc_latency` is charged per proxy access.
    pub fn new(rpc_latency: SimDur, heartbeat_period: SimDur) -> MetaStore {
        MetaStore {
            rpc_latency,
            heartbeat_period,
            miss_threshold: 2,
            status: FxHashMap::default(),
            reads: 0,
            writes: 0,
            stall_until: SimTime::ZERO,
        }
    }

    /// Per-access RPC latency the proxy pays.
    pub fn rpc_latency(&self) -> SimDur {
        self.rpc_latency
    }

    /// Time from an instance dying to the proxy presuming it dead:
    /// `miss_threshold` heartbeat periods plus one RPC.
    pub fn detection_latency(&self) -> SimDur {
        self.heartbeat_period * self.miss_threshold as u64 + self.rpc_latency
    }

    /// An instance publishes its heartbeat and load hint.
    pub fn heartbeat(&mut self, inst: InstRef, now: SimTime, load: f64) {
        self.writes += 1;
        let e = self.status.entry(inst).or_insert(InstanceStatus {
            last_heartbeat: now,
            load,
            confirmed_dead: false,
        });
        if !e.confirmed_dead {
            e.last_heartbeat = now;
            e.load = load;
        }
    }

    /// Marks an instance dead administratively (failure confirmed).
    pub fn confirm_dead(&mut self, inst: InstRef) {
        self.writes += 1;
        let e = self.status.entry(inst).or_insert(InstanceStatus {
            last_heartbeat: SimTime::ZERO,
            load: 0.0,
            confirmed_dead: true,
        });
        e.confirmed_dead = true;
    }

    /// True if the proxy should treat the instance as dead at `now`:
    /// confirmed, or silent for more than the miss threshold.
    pub fn presumed_dead(&mut self, inst: InstRef, now: SimTime) -> bool {
        self.reads += 1;
        match self.status.get(&inst) {
            None => false, // never registered: assume booting
            Some(s) => {
                s.confirmed_dead
                    || now.saturating_since(s.last_heartbeat)
                        > self.heartbeat_period * self.miss_threshold as u64
            }
        }
    }

    /// Load hint for an instance (`None` if unknown or dead).
    pub fn load_hint(&mut self, inst: InstRef, now: SimTime) -> Option<f64> {
        if self.presumed_dead(inst, now) {
            return None;
        }
        self.reads += 1;
        self.status.get(&inst).map(|s| s.load)
    }

    /// Opens (or extends) a stall window on the metadata path until
    /// `until`: dispatches arriving inside the window must retry with
    /// backoff instead of reading stale state.
    pub fn begin_stall(&mut self, until: SimTime) {
        self.stall_until = self.stall_until.max(until);
    }

    /// True while the metadata path is stalled at `now`.
    pub fn stalled(&self, now: SimTime) -> bool {
        now < self.stall_until
    }

    /// Retry backoff for a dispatch that found the store stalled:
    /// exponential in the attempt number, starting from one RPC latency and
    /// capped at 1024 RPCs (~0.5 s at the default 500 µs) so a long stall
    /// cannot push retries past the drain window.
    pub fn retry_backoff(&self, attempt: u32) -> SimDur {
        self.rpc_latency * (1u64 << attempt.min(10))
    }

    /// `(reads, writes)` access counters (Figure 14's control-plane cost).
    pub fn stats(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Instances currently presumed alive at `now`.
    pub fn alive(&mut self, now: SimTime) -> Vec<InstRef> {
        let mut keys: Vec<InstRef> = self.status.keys().copied().collect();
        keys.sort(); // deterministic order despite the hash map
        keys.into_iter()
            .filter(|&k| !self.presumed_dead(k, now))
            .collect()
    }
}

/// Gateway admission-control policy: per-model and total in-flight quotas.
///
/// Zero means unlimited for either bound. `retry_after_secs` is the hint
/// returned with a 429 so well-behaved clients back off.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum in-flight requests per model (0 = unlimited).
    pub max_inflight_per_model: u32,
    /// Maximum in-flight requests across all models (0 = unlimited).
    pub max_inflight_total: u32,
    /// `Retry-After` hint attached to rejections, in seconds.
    pub retry_after_secs: u32,
}

impl AdmissionPolicy {
    /// A permissive default: no per-model bound, 1024 total, 1 s backoff.
    pub fn default_gateway() -> AdmissionPolicy {
        AdmissionPolicy {
            max_inflight_per_model: 0,
            max_inflight_total: 1024,
            retry_after_secs: 1,
        }
    }
}

/// The gateway's admission gate: counts in-flight requests against an
/// [`AdmissionPolicy`] and keeps a rejection book for cross-checking the
/// 429s clients observed against what the server believes it refused.
#[derive(Debug, Clone)]
pub struct Admission {
    policy: AdmissionPolicy,
    inflight_total: u32,
    inflight: FxHashMap<ModelId, u32>,
    rejected_total: u64,
    rejected: FxHashMap<ModelId, u64>,
}

impl Admission {
    /// An empty gate under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Admission {
        Admission {
            policy,
            inflight_total: 0,
            inflight: FxHashMap::default(),
            rejected_total: 0,
            rejected: FxHashMap::default(),
        }
    }

    /// Tries to admit one request for `model`. On success the request is
    /// counted in-flight until [`Admission::release`]; on rejection the
    /// book is charged and the `Retry-After` hint (seconds) is returned.
    pub fn try_admit(&mut self, model: ModelId) -> Result<(), u32> {
        let per_model = self.policy.max_inflight_per_model;
        let total = self.policy.max_inflight_total;
        let cur = self.inflight.get(&model).copied().unwrap_or(0);
        let over_model = per_model > 0 && cur >= per_model;
        let over_total = total > 0 && self.inflight_total >= total;
        if over_model || over_total {
            self.rejected_total += 1;
            *self.rejected.entry(model).or_insert(0) += 1;
            return Err(self.policy.retry_after_secs);
        }
        self.inflight.insert(model, cur + 1);
        self.inflight_total += 1;
        Ok(())
    }

    /// Releases one in-flight slot for `model` (stream finished or client
    /// hung up).
    pub fn release(&mut self, model: ModelId) {
        if let Some(c) = self.inflight.get_mut(&model) {
            if *c > 0 {
                *c -= 1;
                self.inflight_total -= 1;
            }
        }
    }

    /// Requests currently in flight.
    pub fn inflight_total(&self) -> u32 {
        self.inflight_total
    }

    /// Total rejections recorded so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total
    }

    /// Rejections recorded for one model.
    pub fn rejected_for(&self, model: ModelId) -> u64 {
        self.rejected.get(&model).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn store() -> MetaStore {
        MetaStore::new(SimDur::from_micros(500), SimDur::from_secs(1))
    }

    #[test]
    fn fresh_heartbeats_keep_instances_alive() {
        let mut m = store();
        let a = InstRef::prefill(0);
        m.heartbeat(a, secs(0.0), 1.0);
        m.heartbeat(a, secs(1.0), 2.0);
        assert!(!m.presumed_dead(a, secs(1.5)));
        assert_eq!(m.load_hint(a, secs(1.5)), Some(2.0));
    }

    #[test]
    fn silence_beyond_threshold_presumes_death() {
        let mut m = store();
        let a = InstRef::decode(3);
        m.heartbeat(a, secs(0.0), 1.0);
        assert!(!m.presumed_dead(a, secs(2.0)), "exactly at threshold");
        assert!(m.presumed_dead(a, secs(2.1)));
        assert_eq!(m.load_hint(a, secs(2.1)), None);
    }

    #[test]
    fn confirmed_death_is_sticky() {
        let mut m = store();
        let a = InstRef::decode(0);
        m.heartbeat(a, secs(0.0), 1.0);
        m.confirm_dead(a);
        // A late heartbeat from a zombie must not resurrect it.
        m.heartbeat(a, secs(0.5), 1.0);
        assert!(m.presumed_dead(a, secs(0.6)));
    }

    #[test]
    fn detection_latency_is_two_periods_plus_rpc() {
        let m = store();
        let d = m.detection_latency().as_secs_f64();
        assert!((d - 2.0005).abs() < 1e-9, "{d}");
    }

    #[test]
    fn alive_lists_only_live_instances() {
        let mut m = store();
        let a = InstRef::prefill(0);
        let b = InstRef::decode(1);
        m.heartbeat(a, secs(10.0), 0.0);
        m.heartbeat(b, secs(0.0), 0.0);
        let alive = m.alive(secs(10.5));
        assert_eq!(alive, vec![a]);
    }

    #[test]
    fn unknown_instances_are_assumed_booting() {
        let mut m = store();
        assert!(!m.presumed_dead(InstRef::decode(9), secs(100.0)));
    }

    #[test]
    fn stall_window_extends_but_never_shrinks() {
        let mut m = store();
        assert!(!m.stalled(secs(0.0)));
        m.begin_stall(secs(5.0));
        assert!(m.stalled(secs(4.9)));
        assert!(!m.stalled(secs(5.0)), "window end is exclusive");
        m.begin_stall(secs(3.0)); // shorter overlapping stall: no-op
        assert!(m.stalled(secs(4.9)));
        m.begin_stall(secs(8.0));
        assert!(m.stalled(secs(7.9)));
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let m = store();
        let rpc = m.rpc_latency().as_secs_f64();
        assert_eq!(m.retry_backoff(1).as_secs_f64(), rpc * 2.0);
        assert_eq!(m.retry_backoff(3).as_secs_f64(), rpc * 8.0);
        let capped = m.retry_backoff(10);
        assert_eq!(m.retry_backoff(40), capped, "backoff must be capped");
        assert!(capped.as_secs_f64() < 1.0);
    }

    #[test]
    fn admission_enforces_per_model_quota() {
        let mut a = Admission::new(AdmissionPolicy {
            max_inflight_per_model: 2,
            max_inflight_total: 0,
            retry_after_secs: 3,
        });
        let m0 = ModelId(0);
        let m1 = ModelId(1);
        assert!(a.try_admit(m0).is_ok());
        assert!(a.try_admit(m0).is_ok());
        assert_eq!(a.try_admit(m0), Err(3), "third in-flight for m0 refused");
        assert!(a.try_admit(m1).is_ok(), "other models unaffected");
        assert_eq!(a.rejected_total(), 1);
        assert_eq!(a.rejected_for(m0), 1);
        assert_eq!(a.rejected_for(m1), 0);
        a.release(m0);
        assert!(a.try_admit(m0).is_ok(), "released slot is reusable");
    }

    #[test]
    fn admission_enforces_total_quota() {
        let mut a = Admission::new(AdmissionPolicy {
            max_inflight_per_model: 0,
            max_inflight_total: 3,
            retry_after_secs: 1,
        });
        for i in 0..3 {
            assert!(a.try_admit(ModelId(i)).is_ok());
        }
        assert_eq!(a.inflight_total(), 3);
        assert_eq!(a.try_admit(ModelId(9)), Err(1));
        a.release(ModelId(1));
        assert!(a.try_admit(ModelId(9)).is_ok());
        assert_eq!(a.rejected_total(), 1);
    }

    #[test]
    fn admission_zero_quotas_mean_unlimited() {
        let mut a = Admission::new(AdmissionPolicy {
            max_inflight_per_model: 0,
            max_inflight_total: 0,
            retry_after_secs: 1,
        });
        for i in 0..10_000u32 {
            assert!(a.try_admit(ModelId(i % 7)).is_ok());
        }
        assert_eq!(a.rejected_total(), 0);
    }

    #[test]
    fn release_without_admit_is_a_noop() {
        let mut a = Admission::new(AdmissionPolicy::default_gateway());
        a.release(ModelId(0));
        assert_eq!(a.inflight_total(), 0);
    }
}
