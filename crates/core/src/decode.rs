//! Algorithm 2: batched weighted-round-robin decoding-phase scheduling.
//!
//! Each decoding instance keeps a rotating *work list* of batches, one model
//! per batch. Rounds assign quotas (see [`crate::quota`]), reorder the list
//! so same-model batches are adjacent (saving switches), then decode each
//! batch for its quota ("a turn"). New requests join an existing same-model
//! batch with room, or append a new batch to the least-loaded work list
//! (load measured in work-list size, max batch sizes derived from KV-cache
//! capacity — Algorithm 2, line 2).

use aegaeon_model::ModelId;
use aegaeon_workload::RequestId;

/// Identifies a batch within one instance's work list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BatchId(pub u64);

/// A decoding batch: requests of one model plus its current quota.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stable id.
    pub id: BatchId,
    /// The model.
    pub model: ModelId,
    /// Member requests.
    pub reqs: Vec<RequestId>,
    /// Current round's quota, seconds.
    pub quota: f64,
}

/// One decoding instance's rotating work list.
#[derive(Debug, Clone, Default)]
pub struct WorkList {
    batches: Vec<Batch>,
    next_id: u64,
}

impl WorkList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a new batch for `model` holding `req`.
    pub fn add_batch(&mut self, model: ModelId, req: RequestId) -> BatchId {
        let id = BatchId(self.next_id);
        self.next_id += 1;
        self.batches.push(Batch {
            id,
            model,
            reqs: vec![req],
            quota: 0.0,
        });
        id
    }

    /// A same-model batch that `can_accept` (capacity predicate) approves.
    pub fn find_joinable(
        &self,
        model: ModelId,
        mut can_accept: impl FnMut(&Batch) -> bool,
    ) -> Option<BatchId> {
        self.batches
            .iter()
            .find(|b| b.model == model && can_accept(b))
            .map(|b| b.id)
    }

    /// Mutable access to a batch.
    pub fn get_mut(&mut self, id: BatchId) -> Option<&mut Batch> {
        self.batches.iter_mut().find(|b| b.id == id)
    }

    /// Shared access to a batch.
    pub fn get(&self, id: BatchId) -> Option<&Batch> {
        self.batches.iter().find(|b| b.id == id)
    }

    /// Removes empty batches.
    pub fn remove_empty(&mut self) {
        self.batches.retain(|b| !b.reqs.is_empty());
    }

    /// Removes `req` from its batch, if present; returns the batch id.
    pub fn remove_request(&mut self, req: RequestId) -> Option<BatchId> {
        for b in &mut self.batches {
            if let Some(pos) = b.reqs.iter().position(|&r| r == req) {
                b.reqs.remove(pos);
                return Some(b.id);
            }
        }
        None
    }

    /// Stable reorder grouping same-model batches adjacently, by first
    /// occurrence (Algorithm 2, line 6).
    pub fn reorder_by_model(&mut self) {
        let mut order: Vec<ModelId> = Vec::new();
        for b in &self.batches {
            if !order.contains(&b.model) {
                order.push(b.model);
            }
        }
        self.batches.sort_by_key(|b| {
            order
                .iter()
                .position(|&m| m == b.model)
                .expect("model seen above")
        });
    }

    /// Batch ids in rotation order.
    pub fn order(&self) -> Vec<BatchId> {
        self.batches.iter().map(|b| b.id).collect()
    }

    /// Number of batches (the "work list size" load metric).
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True if no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Distinct models present.
    pub fn distinct_models(&self) -> Vec<ModelId> {
        let mut out = Vec::new();
        for b in &self.batches {
            if !out.contains(&b.model) {
                out.push(b.model);
            }
        }
        out
    }

    /// Iterates batches in order.
    pub fn iter(&self) -> impl Iterator<Item = &Batch> {
        self.batches.iter()
    }

    /// Total requests across batches.
    pub fn total_requests(&self) -> usize {
        self.batches.iter().map(|b| b.reqs.len()).sum()
    }
}

/// Picks the decoding instance for a freshly prefilled request (Algorithm 2,
/// line 2): prefer an instance with a joinable same-model batch; otherwise
/// the smallest work list. `same_node` breaks ties toward KV locality.
pub fn dispatch_decode(
    lists: &[&WorkList],
    model: ModelId,
    mut can_accept: impl FnMut(usize, &Batch) -> bool,
    same_node: impl Fn(usize) -> bool,
) -> (usize, Option<BatchId>) {
    // (instance index, joinable batch, preference key) — lower key wins.
    type Candidate = (usize, Option<BatchId>, (u8, usize, u8));
    let mut best: Option<Candidate> = None;
    for (i, wl) in lists.iter().enumerate() {
        let join = wl.find_joinable(model, |b| can_accept(i, b));
        let key = (u8::from(join.is_none()), wl.len(), u8::from(!same_node(i)));
        if best.as_ref().is_none_or(|(_, _, k)| key < *k) {
            best = Some((i, join, key));
        }
    }
    let (i, join, _) = best.expect("at least one decoding instance");
    (i, join)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(x: u32) -> ModelId {
        ModelId(x)
    }
    fn rid(x: u64) -> RequestId {
        RequestId(x)
    }

    #[test]
    fn reorder_groups_same_models() {
        let mut wl = WorkList::new();
        wl.add_batch(mid(0), rid(0));
        wl.add_batch(mid(1), rid(1));
        wl.add_batch(mid(0), rid(2));
        wl.add_batch(mid(2), rid(3));
        wl.reorder_by_model();
        let models: Vec<u32> = wl.iter().map(|b| b.model.0).collect();
        assert_eq!(models, vec![0, 0, 1, 2]);
    }

    #[test]
    fn dispatch_prefers_joinable_batch() {
        let mut a = WorkList::new();
        a.add_batch(mid(0), rid(0));
        let mut b = WorkList::new();
        b.add_batch(mid(1), rid(1));
        let lists = [&a, &b];
        let (i, join) = dispatch_decode(&lists, mid(1), |_, _| true, |_| true);
        assert_eq!(i, 1);
        assert!(join.is_some());
    }

    #[test]
    fn dispatch_falls_back_to_least_loaded() {
        let mut a = WorkList::new();
        a.add_batch(mid(0), rid(0));
        a.add_batch(mid(1), rid(1));
        let b = WorkList::new();
        let lists = [&a, &b];
        let (i, join) = dispatch_decode(&lists, mid(9), |_, _| true, |_| true);
        assert_eq!(i, 1);
        assert!(join.is_none());
    }

    #[test]
    fn dispatch_respects_capacity_predicate() {
        let mut a = WorkList::new();
        a.add_batch(mid(0), rid(0));
        let b = WorkList::new();
        let lists = [&a, &b];
        // The same-model batch is full: must open a new batch elsewhere.
        let (i, join) = dispatch_decode(&lists, mid(0), |_, _| false, |_| true);
        assert_eq!(i, 1);
        assert!(join.is_none());
    }

    #[test]
    fn dispatch_breaks_ties_by_locality() {
        let wa = WorkList::new();
        let wb = WorkList::new();
        let lists = [&wa, &wb];
        let (i, _) = dispatch_decode(&lists, mid(0), |_, _| true, |i| i == 1);
        assert_eq!(i, 1);
    }

    #[test]
    fn remove_request_and_empty_cleanup() {
        let mut wl = WorkList::new();
        let b0 = wl.add_batch(mid(0), rid(0));
        wl.get_mut(b0).unwrap().reqs.push(rid(1));
        assert_eq!(wl.remove_request(rid(0)), Some(b0));
        assert_eq!(wl.total_requests(), 1);
        wl.remove_request(rid(1));
        wl.remove_empty();
        assert!(wl.is_empty());
    }

    #[test]
    fn distinct_models_in_first_seen_order() {
        let mut wl = WorkList::new();
        wl.add_batch(mid(2), rid(0));
        wl.add_batch(mid(0), rid(1));
        wl.add_batch(mid(2), rid(2));
        assert_eq!(wl.distinct_models(), vec![mid(2), mid(0)]);
    }
}
