//! Always-on invariant auditor.
//!
//! Chaos testing is only meaningful if violations are *detected*, not just
//! survived. The [`Auditor`] trait hooks into the serving systems' dispatch
//! loops — Aegaeon's and the baselines' — and is consulted after every
//! dispatched event. When auditing is disabled the hook is a single branch
//! on a `None` option, the same discipline as lazy tracing: the hot path
//! pays nothing.
//!
//! Systems expose their auditable state through [`AuditView`], a read-only
//! facade, which keeps the auditor strictly an *observer*: it can never
//! perturb scheduling, so a run with the auditor on produces bit-identical
//! results to a run with it off (a differential test asserts this).

use aegaeon_sim::SimTime;
use std::fmt;

/// Read-only audit facade over one request's progress.
#[derive(Debug, Clone, Copy)]
pub struct ReqAudit<'a> {
    /// Output tokens produced so far.
    pub produced: u32,
    /// Oracle output length.
    pub target: u32,
    /// True once the request has fully completed.
    pub done: bool,
    /// Generation instants, one per produced token.
    pub token_times: &'a [SimTime],
}

/// Read-only view a serving system exposes to the auditor.
pub trait AuditView {
    /// Requests completed so far (the system's own counter, which the
    /// auditor cross-checks against per-request state).
    fn completed_counter(&self) -> u64;
    /// Requests rejected by admission control (baselines only).
    fn rejected_counter(&self) -> u64 {
        0
    }
    /// Requests handed off to another shard after a total tier loss
    /// (sharded runs only). A migrated request is locally resolved without
    /// completing, so conservation counts it alongside completions and
    /// rejections.
    fn migrated_counter(&self) -> u64 {
        0
    }
    /// Total requests in the trace.
    fn request_count(&self) -> usize;
    /// Audit view of request `i`.
    fn request(&self, i: usize) -> ReqAudit<'_>;
    /// Deep-checks memory accounting (VRAM slabs, KV block ownership);
    /// `Some(description)` on violation.
    fn memory_audit(&self) -> Option<String> {
        None
    }
    /// Deep-checks bandwidth conservation on every fabric link;
    /// `Some(description)` on violation.
    fn link_audit(&self) -> Option<String> {
        None
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated time of the event after which the check failed.
    pub at: SimTime,
    /// Human-readable description.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={:.6}s] {}", self.at.as_secs_f64(), self.what)
    }
}

/// Outcome of an audited run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Events after which the full invariant suite ran.
    pub events_checked: u64,
    /// All violations, in detection order.
    pub violations: Vec<Violation>,
    /// Requests turned away at the gateway's admission gate (429s). These
    /// never enter the trace — conservation is audited over admitted
    /// requests only — so the gateway surfaces its rejection book here for
    /// cross-checks against client-observed 429 counts.
    pub rejections: u64,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(f, "audit ok ({} events checked)", self.events_checked)
        } else {
            writeln!(
                f,
                "audit FAILED: {} violation(s) over {} events:",
                self.violations.len(),
                self.events_checked
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Observer invoked by a serving system's dispatch loop.
pub trait Auditor {
    /// Called after every dispatched event with the post-event state.
    fn after_event(&mut self, now: SimTime, view: &dyn AuditView);
    /// Called once when the run drains.
    fn at_finish(&mut self, now: SimTime, view: &dyn AuditView);
    /// Consumes the accumulated report.
    fn take_report(&mut self) -> AuditReport;
}

/// The standard invariant suite:
///
/// 1. **Causality** — observed event times never decrease.
/// 2. **Conservation** — no request is lost or double-completed: the
///    completion counter is monotone and always equals the number of
///    requests whose state says "done"; completed + rejected never exceeds
///    the trace size; at finish every request is accounted for.
/// 3. **Progress sanity** — per-request `produced` never regresses and
///    never exceeds the oracle target; one timestamp per token.
/// 4. **Token monotonicity** — per-token timestamps are nondecreasing and
///    never in the future.
/// 5. **Memory accounting** — delegated to [`AuditView::memory_audit`]
///    (slab/KV block books sum to capacity, no double ownership).
/// 6. **Bandwidth conservation** — delegated to [`AuditView::link_audit`]
///    (per-link started = delivered + in-flight; delivered never exceeds
///    nominal capacity × busy time).
///
/// # Scaling
///
/// A full per-request sweep on every event is O(requests·events) —
/// quadratic once the gateway holds tens of thousands of streams in
/// flight. Above [`InvariantAuditor::FULL_SCAN_MAX`] requests the auditor
/// switches to a bounded round-robin window per event (every request is
/// still revisited every `n / window` events, and the per-request
/// high-water marks make regression checks *delayed, never lost*), and
/// the memory/bandwidth book audits run on a fixed event cadence instead
/// of every event. The exact `completed == done-requests` cross-count
/// needs a full sweep, so in windowed mode it runs only at finish. All of
/// this is deterministic (purely event-count driven) and observer-only.
#[derive(Debug, Default)]
pub struct InvariantAuditor {
    last_now: SimTime,
    last_completed: u64,
    /// Per-request high-water marks: (produced, token_times.len()).
    progress: Vec<(u32, usize)>,
    report: AuditReport,
    /// Cap on recorded violations so a broken run cannot OOM the auditor.
    max_violations: usize,
    /// Round-robin position for windowed scans.
    cursor: usize,
    /// Events since the last memory/link book audit in windowed mode.
    since_books: u32,
}

impl InvariantAuditor {
    /// Largest request count still fully swept on every event.
    pub const FULL_SCAN_MAX: usize = 2048;
    /// Requests validated per event in windowed mode.
    const WINDOW: usize = 128;
    /// Event cadence of the memory/link book audits in windowed mode.
    const BOOKS_EVERY: u32 = 256;

    /// A fresh auditor.
    pub fn new() -> Self {
        InvariantAuditor {
            max_violations: 64,
            ..Default::default()
        }
    }

    fn flag(&mut self, at: SimTime, what: String) {
        if self.report.violations.len() < self.max_violations {
            self.report.violations.push(Violation { at, what });
        }
    }

    fn check(&mut self, now: SimTime, view: &dyn AuditView) {
        self.check_inner(now, view, false);
    }

    fn check_inner(&mut self, now: SimTime, view: &dyn AuditView, force_full: bool) {
        self.report.events_checked += 1;
        if now < self.last_now {
            self.flag(
                now,
                format!(
                    "causality: event at {:.6}s observed after {:.6}s",
                    now.as_secs_f64(),
                    self.last_now.as_secs_f64()
                ),
            );
        }
        self.last_now = self.last_now.max(now);

        let n = view.request_count();
        self.progress.resize(n, (0, 0));
        let completed = view.completed_counter();
        if completed < self.last_completed {
            self.flag(
                now,
                format!(
                    "conservation: completed counter regressed {} -> {}",
                    self.last_completed, completed
                ),
            );
        }
        self.last_completed = self.last_completed.max(completed);
        let rejected = view.rejected_counter();
        let migrated = view.migrated_counter();
        if completed + rejected + migrated > n as u64 {
            self.flag(
                now,
                format!(
                    "conservation: completed {completed} + rejected {rejected} + migrated {migrated} exceeds trace size {n}"
                ),
            );
        }

        if force_full || n <= Self::FULL_SCAN_MAX {
            let mut done_count = 0u64;
            for i in 0..n {
                if self.scan_request(now, view, i) {
                    done_count += 1;
                }
            }
            if completed != done_count {
                self.flag(
                    now,
                    format!(
                        "conservation: completed counter {completed} disagrees with {done_count} done requests"
                    ),
                );
            }
            self.audit_books(now, view);
        } else {
            // Windowed mode: revisit WINDOW requests per event round-robin.
            // High-water marks make regressions delayed, never lost; the
            // exact completed == done-requests cross-count needs a full
            // sweep and runs at finish instead.
            let span = Self::WINDOW.min(n);
            for k in 0..span {
                let i = (self.cursor + k) % n;
                self.scan_request(now, view, i);
            }
            self.cursor = (self.cursor + span) % n;
            self.since_books += 1;
            if self.since_books >= Self::BOOKS_EVERY {
                self.since_books = 0;
                self.audit_books(now, view);
            }
        }
    }

    fn audit_books(&mut self, now: SimTime, view: &dyn AuditView) {
        if let Some(what) = view.memory_audit() {
            self.flag(now, format!("memory: {what}"));
        }
        if let Some(what) = view.link_audit() {
            self.flag(now, format!("bandwidth: {what}"));
        }
    }

    /// Validate one request against its high-water marks; returns whether
    /// the request is done.
    fn scan_request(&mut self, now: SimTime, view: &dyn AuditView, i: usize) -> bool {
        let r = view.request(i);
        let (seen_produced, seen_tokens) = self.progress[i];
        if r.produced < seen_produced {
            self.flag(
                now,
                format!(
                    "progress: request {i} produced regressed {seen_produced} -> {}",
                    r.produced
                ),
            );
        }
        if r.produced > r.target {
            self.flag(
                now,
                format!(
                    "progress: request {i} produced {} beyond target {}",
                    r.produced, r.target
                ),
            );
        }
        if r.token_times.len() != r.produced as usize {
            self.flag(
                now,
                format!(
                    "progress: request {i} has {} token timestamps for {} produced tokens",
                    r.token_times.len(),
                    r.produced
                ),
            );
        }
        // Only the newly appended timestamps need checking; the prefix
        // was validated on earlier events.
        let start = seen_tokens.saturating_sub(1).min(r.token_times.len());
        for w in r.token_times[start..].windows(2) {
            if w[1] < w[0] {
                self.flag(
                    now,
                    format!(
                        "token order: request {i} timestamps go backwards ({:.6}s after {:.6}s)",
                        w[1].as_secs_f64(),
                        w[0].as_secs_f64()
                    ),
                );
            }
        }
        if let Some(&last) = r.token_times.last() {
            if r.token_times.len() > seen_tokens && last > now {
                self.flag(
                    now,
                    format!(
                        "token order: request {i} token stamped {:.6}s in the future of {:.6}s",
                        last.as_secs_f64(),
                        now.as_secs_f64()
                    ),
                );
            }
        }
        self.progress[i] = (
            seen_produced.max(r.produced),
            seen_tokens.max(r.token_times.len()),
        );
        r.done
    }
}

impl Auditor for InvariantAuditor {
    fn after_event(&mut self, now: SimTime, view: &dyn AuditView) {
        self.check(now, view);
    }

    fn at_finish(&mut self, now: SimTime, view: &dyn AuditView) {
        // The final sweep is always exhaustive, even in windowed mode.
        self.check_inner(now, view, true);
        // End-of-run conservation: every request completed, rejected, or
        // handed off to another shard.
        let n = view.request_count() as u64;
        let completed = view.completed_counter();
        let rejected = view.rejected_counter();
        let migrated = view.migrated_counter();
        if completed + rejected + migrated != n {
            self.flag(
                now,
                format!(
                    "conservation at finish: completed {completed} + rejected {rejected} + migrated {migrated} != trace size {n}"
                ),
            );
        }
    }

    fn take_report(&mut self) -> AuditReport {
        std::mem::take(&mut self.report)
    }
}

/// Standalone helper shared with the unified schedulers: checks one
/// request's token timestamps are nondecreasing. Returns `Some(description)`
/// on the first violation.
pub fn check_token_order(req_idx: usize, token_times: &[SimTime]) -> Option<String> {
    for w in token_times.windows(2) {
        if w[1] < w[0] {
            return Some(format!(
                "request {req_idx}: token at {:.6}s precedes token at {:.6}s",
                w[1].as_secs_f64(),
                w[0].as_secs_f64()
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-rolled view for exercising the auditor without a full system.
    struct FakeView {
        completed: u64,
        rejected: u64,
        reqs: Vec<(u32, u32, bool, Vec<SimTime>)>,
        mem: Option<String>,
        link: Option<String>,
    }

    impl AuditView for FakeView {
        fn completed_counter(&self) -> u64 {
            self.completed
        }
        fn rejected_counter(&self) -> u64 {
            self.rejected
        }
        fn request_count(&self) -> usize {
            self.reqs.len()
        }
        fn request(&self, i: usize) -> ReqAudit<'_> {
            let (produced, target, done, times) = &self.reqs[i];
            ReqAudit {
                produced: *produced,
                target: *target,
                done: *done,
                token_times: times,
            }
        }
        fn memory_audit(&self) -> Option<String> {
            self.mem.clone()
        }
        fn link_audit(&self) -> Option<String> {
            self.link.clone()
        }
    }

    fn clean_view() -> FakeView {
        FakeView {
            completed: 1,
            rejected: 0,
            reqs: vec![
                (
                    2,
                    2,
                    true,
                    vec![SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(2.0)],
                ),
                (1, 3, false, vec![SimTime::from_secs_f64(1.5)]),
            ],
            mem: None,
            link: None,
        }
    }

    #[test]
    fn clean_run_passes() {
        let mut a = InvariantAuditor::new();
        let v = clean_view();
        a.after_event(SimTime::from_secs_f64(2.0), &v);
        a.after_event(SimTime::from_secs_f64(3.0), &v);
        let mut done = clean_view();
        done.completed = 2;
        done.reqs[1] = (
            3,
            3,
            true,
            vec![
                SimTime::from_secs_f64(1.5),
                SimTime::from_secs_f64(3.5),
                SimTime::from_secs_f64(4.0),
            ],
        );
        a.at_finish(SimTime::from_secs_f64(4.0), &done);
        let report = a.take_report();
        assert!(report.ok(), "{report}");
        assert_eq!(report.events_checked, 3);
    }

    #[test]
    fn detects_time_regression() {
        let mut a = InvariantAuditor::new();
        let v = clean_view();
        a.after_event(SimTime::from_secs_f64(5.0), &v);
        a.after_event(SimTime::from_secs_f64(4.0), &v);
        let report = a.take_report();
        assert!(!report.ok());
        assert!(report.violations[0].what.contains("causality"), "{report}");
    }

    #[test]
    fn detects_lost_and_double_completed_requests() {
        let mut a = InvariantAuditor::new();
        let mut v = clean_view();
        v.completed = 2; // claims two done, state says one
        a.after_event(SimTime::from_secs_f64(3.0), &v);
        assert!(!a.take_report().ok());

        let mut a = InvariantAuditor::new();
        let mut fin = clean_view();
        fin.reqs[1].2 = false; // never completes
        a.at_finish(SimTime::from_secs_f64(9.0), &fin);
        let report = a.take_report();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.what.contains("at finish")),
            "{report}"
        );
    }

    #[test]
    fn detects_produced_regression_and_token_disorder() {
        let mut a = InvariantAuditor::new();
        let v = clean_view();
        a.after_event(SimTime::from_secs_f64(2.0), &v);
        let mut worse = clean_view();
        worse.reqs[0].0 = 1; // produced went backwards
        worse.reqs[0].3.pop();
        a.after_event(SimTime::from_secs_f64(2.5), &worse);
        let report = a.take_report();
        assert!(report
            .violations
            .iter()
            .any(|v| v.what.contains("regressed")));

        let mut a = InvariantAuditor::new();
        let mut bad = clean_view();
        bad.reqs[0].3 = vec![SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(1.0)];
        a.after_event(SimTime::from_secs_f64(3.0), &bad);
        let report = a.take_report();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.what.contains("token order")),
            "{report}"
        );
    }

    #[test]
    fn surfaces_memory_and_link_violations() {
        let mut a = InvariantAuditor::new();
        let mut v = clean_view();
        v.mem = Some("slab 3 double-assigned".into());
        v.link = Some("link pcie0 over capacity".into());
        a.after_event(SimTime::from_secs_f64(3.0), &v);
        let report = a.take_report();
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations[0].what.starts_with("memory:"));
        assert!(report.violations[1].what.starts_with("bandwidth:"));
    }

    #[test]
    fn violation_count_is_capped() {
        let mut a = InvariantAuditor::new();
        let mut v = clean_view();
        v.mem = Some("boom".into());
        for i in 0..1000 {
            a.after_event(SimTime::from_secs_f64(i as f64), &v);
        }
        let report = a.take_report();
        assert_eq!(report.violations.len(), 64);
        assert_eq!(report.events_checked, 1000);
    }

    #[test]
    fn check_token_order_helper() {
        assert!(check_token_order(0, &[]).is_none());
        assert!(check_token_order(
            0,
            &[SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(1.0)]
        )
        .is_none());
        assert!(check_token_order(
            7,
            &[SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(1.0)]
        )
        .unwrap()
        .contains("request 7"));
    }
}
