//! Top-level simulation events and fabric completion tags.

use aegaeon_gpu::FabricEvent;
use aegaeon_model::ModelId;
use aegaeon_sim::SimTime;
use aegaeon_workload::RequestId;

/// Which kind of instance a tag refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstKind {
    /// A prefill instance.
    Prefill,
    /// A decoding instance.
    Decode,
}

/// A reference to one serving instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstRef {
    /// Prefill or decode.
    pub kind: InstKind,
    /// Index within its kind.
    pub idx: u32,
}

impl InstRef {
    /// A prefill instance reference.
    pub fn prefill(idx: usize) -> InstRef {
        InstRef {
            kind: InstKind::Prefill,
            idx: idx as u32,
        }
    }

    /// A decoding instance reference.
    pub fn decode(idx: usize) -> InstRef {
        InstRef {
            kind: InstKind::Decode,
            idx: idx as u32,
        }
    }
}

/// Completion tags attached to fabric ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tag {
    /// One shard of a multi-GPU (TP) operation; the map in the system
    /// counts parts down and then handles the inner tag.
    Part(u64),
    /// A prefill job finished.
    PrefillDone {
        /// Prefill instance.
        inst: u32,
        /// The request.
        req: RequestId,
    },
    /// One auto-scaling stage finished.
    ScaleStage {
        /// The instance.
        at: InstRef,
        /// Scaling-sequence generation (guards staleness).
        seq: u64,
    },
    /// A model prefetch landed in the VRAM prefetch region.
    PrefetchDone {
        /// The instance.
        at: InstRef,
        /// Prefetched model.
        model: ModelId,
        /// Prefetch-sequence generation.
        seq: u64,
    },
    /// One decoding step finished.
    DecodeStep {
        /// Decoding instance.
        inst: u32,
        /// Turn generation (guards staleness).
        turn: u64,
    },
    /// A request's KV cache finished swapping into a decoding instance.
    KvIn {
        /// Decoding instance.
        inst: u32,
        /// The request.
        req: RequestId,
        /// Turn generation it was issued for.
        turn: u64,
    },
    /// A request's KV cache finished swapping out (accounting only; block
    /// reclamation goes through move lists).
    KvOut {
        /// The request.
        req: RequestId,
    },
    /// An intermediate hop (e.g. the NIC leg of a cross-node transfer)
    /// requiring no action.
    Noop,
}

/// Top-level simulation events.
#[derive(Debug, Clone, PartialEq)]
pub enum Ev {
    /// A GPU-fabric event (stream op done, link timer).
    Fabric(FabricEvent),
    /// Arrival of `trace.requests[idx]` at the proxy.
    Arrive(u32),
    /// A dispatched request reaches its prefill instance (after proxy
    /// latency).
    DispatchPrefill {
        /// Request index in the trace.
        idx: u32,
    },
    /// Move-list reclamation daemon tick. `gen` guards staleness: ticks
    /// stop when the system idles and restart on the next arrival with a
    /// bumped generation, so an idle-stopped tick that is still queued
    /// cannot fork a second tick stream.
    Daemon {
        /// Tick-stream generation (see [`Ev::Daemon`] docs).
        gen: u64,
    },
    /// Periodic statistics sample (same generation discipline as
    /// [`Ev::Daemon`]).
    Sample {
        /// Tick-stream generation.
        gen: u64,
    },
    /// An injected instance failure (index into the materialized fault
    /// schedule).
    Fail(u32),
    /// The proxy's status sync has detected failure `idx` (one heartbeat
    /// period later) and recovers the stranded requests.
    Failover(u32),
    /// A windowed fault (link degradation, staging-buffer OOM, proxy stall)
    /// activates (index into the materialized fault schedule).
    FaultStart(u32),
    /// The windowed fault `idx` clears.
    FaultEnd(u32),
    /// A stall-deferred arrival retries dispatch (attempt count drives the
    /// proxy's exponential backoff).
    Retry {
        /// Request index in the trace.
        req: u32,
        /// Retry attempt, starting at 1.
        attempt: u32,
    },
}

/// One produced token, observed by the live session's token tap.
///
/// The tap is an *observer*: entries are copied out of the two token
/// production sites after the fact and forwarded to per-request SSE sinks;
/// nothing in the simulation reads them back, so enabling the tap cannot
/// perturb results (same discipline as telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEv {
    /// The request that produced the token.
    pub req: RequestId,
    /// Zero-based token index within the request.
    pub index: u32,
    /// Simulated production instant.
    pub at: SimTime,
    /// True when this token completes the request.
    pub done: bool,
    /// True when the request prefilled only its delta off a retained
    /// session prefix (surfaced in the gateway's SSE done frame).
    pub prefix_hit: bool,
}
