//! Capacity planning for the deployment study (§7.5, Figure 18).
//!
//! The production "before" provisions dedicated, redundant instances per
//! model; Aegaeon provisions one shared pool sized by aggregate token
//! demand plus switching overhead. The planner reproduces the 1,192 → 213
//! H20 consolidation *shape* from the paper's published deployment facts
//! (28 models at TP=1, 19 at TP=4, per-model rates 0.01–1.13 req/s).

use aegaeon_engine::PerfModel;
use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
use aegaeon_model::ModelSpec;
use aegaeon_workload::{SloSpec, Trace};

use crate::config::AegaeonConfig;
use crate::system::ServingSystem;

/// One model's deployment demand.
#[derive(Debug, Clone)]
pub struct ModelDemand {
    /// The model (TP degree set).
    pub spec: ModelSpec,
    /// Mean request arrival rate, req/s.
    pub rate: f64,
    /// Mean output tokens per request.
    pub mean_output: f64,
    /// Mean input tokens per request.
    pub mean_input: f64,
}

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Peak-to-mean ratio dedicated serving must absorb (bursts, Fig. 1b).
    pub peak_factor: f64,
    /// Redundancy multiplier for fault tolerance (§7.5 "redundant
    /// resources that exceed the minimum requirements"). Applied to both
    /// deployments, so the *saving ratio* is redundancy-independent.
    pub redundancy: f64,
    /// Minimum dedicated instances per model (availability floor).
    pub min_instances: u32,
    /// Utilization target the shared pool is sized for.
    pub pool_util_target: f64,
    /// Fraction of pool time lost to auto-scaling.
    pub switch_overhead: f64,
    /// Decode batch size assumed for throughput estimates.
    pub batch: usize,
    /// Mean request wall time assumed for the active-model count, seconds
    /// (outputs delivered near the TBT pace).
    pub mean_service_secs: f64,
    /// Concurrently *active* models one pooled TP-group sustains (≈ 7 for
    /// TP=1 per §7.2; fewer for TP=4 whose switches are larger).
    pub active_models_per_instance: f64,
}

impl PlannerConfig {
    /// Defaults calibrated against the §7.5 deployment facts.
    pub fn production_default() -> PlannerConfig {
        PlannerConfig {
            // Dedicated serving provisions for burst peaks (Figure 1b) at
            // comfortable utilization; production keeps hot instances near
            // a third busy (Figure 18 "Before (high load)" ≈ 34%).
            peak_factor: 5.0,
            redundancy: 2.0,
            min_instances: 2,
            pool_util_target: 0.6,
            switch_overhead: 0.10,
            // Sporadic traffic rarely accumulates deep batches.
            batch: 4,
            mean_service_secs: 25.0,
            active_models_per_instance: 7.0,
        }
    }
}

/// Sustainable request rate of one dedicated instance of `spec` on `gpu`.
pub fn instance_capacity_rps(gpu: &GpuSpec, d: &ModelDemand, batch: usize) -> f64 {
    let perf = PerfModel::new(gpu, &d.spec);
    let mean_ctx = (d.mean_input + d.mean_output / 2.0) as u64;
    let tokens_per_sec = perf.decode_token_rate(batch, mean_ctx);
    tokens_per_sec / d.mean_output.max(1.0)
}

/// Dedicated instances (before redundancy) one model needs.
pub fn dedicated_instances(gpu: &GpuSpec, d: &ModelDemand, cfg: &PlannerConfig) -> u32 {
    let cap = instance_capacity_rps(gpu, d, cfg.batch);
    let needed = (d.rate * cfg.peak_factor / cap).ceil() as u32;
    needed.max(cfg.min_instances)
}

/// GPUs needed by the dedicated ("before") deployment.
pub fn dedicated_gpus(gpu: &GpuSpec, demands: &[ModelDemand], cfg: &PlannerConfig) -> u64 {
    demands
        .iter()
        .map(|d| {
            let instances =
                (dedicated_instances(gpu, d, cfg) as f64 * cfg.redundancy).ceil() as u64;
            instances * d.spec.tp as u64
        })
        .sum()
}

/// GPUs needed by one Aegaeon pool serving `demands` (same TP degree).
///
/// Two constraints size the pool: aggregate *throughput* demand at the
/// target utilization, and the *active-model* floor — at any instant
/// `E[m] = Σ (1 − e^{−λT})` models are mid-request (Theorem 3.1), and one
/// pooled instance sustains only a bounded number of concurrently active
/// models at the token level (§7.2's "seven models per GPU"). One extra
/// instance covers the disaggregated prefill partition.
pub fn aegaeon_pool_gpus(gpu: &GpuSpec, demands: &[ModelDemand], cfg: &PlannerConfig) -> u64 {
    if demands.is_empty() {
        return 0;
    }
    let tp = demands[0].spec.tp as u64;
    let mut fractional = 0.0;
    let mut active = 0.0;
    for d in demands {
        assert_eq!(d.spec.tp as u64, tp, "one pool per TP configuration");
        let cap = instance_capacity_rps(gpu, d, cfg.batch);
        fractional += d.rate / cap;
        active += 1.0 - (-d.rate * cfg.mean_service_secs).exp();
    }
    let eff = cfg.pool_util_target * (1.0 - cfg.switch_overhead);
    let by_throughput = (fractional / eff).ceil();
    let per_inst = if tp > 1 {
        // Larger models switch slower; fewer concurrently active models fit.
        (cfg.active_models_per_instance / 2.0).max(1.0)
    } else {
        cfg.active_models_per_instance
    };
    let by_activity = (active / per_inst).ceil() + 1.0; // +1 prefill instance
    let instances = (by_throughput.max(by_activity).max(1.0) * cfg.redundancy).ceil() as u64;
    instances * tp
}

/// Empirically searches the minimum GPU pool that serves `trace` at
/// `threshold` SLO attainment — the paper's §3 objective ("minimize the
/// number of GPU instances N required to meet the SLOs for all models").
///
/// Instances are TP groups of `base.tp`; roughly a third of them prefill.
/// Returns `(total_gpus, attainment_at_that_size)`, or `None` if even
/// `max_gpus` misses the threshold.
pub fn search_min_pool(
    base: &AegaeonConfig,
    gpu: &GpuSpec,
    models: &[ModelSpec],
    trace: &Trace,
    slo: SloSpec,
    threshold: f64,
    max_gpus: u32,
) -> Option<(u32, f64)> {
    let tp = base.tp;
    let mut g = 2 * tp; // at least one prefill + one decoding instance
    while g <= max_gpus {
        let mut cfg = base.clone();
        cfg.cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                gpus: g,
                gpu: gpu.clone(),
                dram_bytes: 2 << 40,
                nic_bw: 25e9,
            },
        );
        let instances = (g / tp) as usize;
        cfg.prefill_instances = (instances / 3).max(1);
        let r = ServingSystem::run(&cfg, models, trace);
        let att = r.attainment(slo).ratio();
        if att >= threshold {
            return Some((g, att));
        }
        g += tp;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::Zoo;

    /// The §7.5 deployment mix: twenty-eight 1.8–7B models at TP=1 and
    /// nineteen 32–72B models at TP=4, rates 0.01–1.13 (mean 0.037... the
    /// paper's stated average over the mix).
    fn production_mix() -> (Vec<ModelDemand>, Vec<ModelDemand>) {
        let zoo = Zoo::standard();
        let small_bases = ["Qwen-1.8B", "Yi-6B", "Qwen-7B", "InternLM2.5-7B"];
        let large_bases = ["Yi-34B", "Qwen-72B"];
        let mut small = Vec::new();
        for i in 0..28 {
            let base = zoo.get(small_bases[i % small_bases.len()]).unwrap();
            small.push(ModelDemand {
                spec: base.with_tp(1),
                rate: 0.01 + 0.02 * (i as f64 % 5.0),
                mean_output: 250.0,
                mean_input: 330.0,
            });
        }
        let mut large = Vec::new();
        for i in 0..19 {
            let base = zoo.get(large_bases[i % large_bases.len()]).unwrap();
            large.push(ModelDemand {
                spec: base.with_tp(4),
                rate: if i == 0 {
                    1.13
                } else {
                    0.01 + 0.015 * (i as f64 % 4.0)
                },
                mean_output: 250.0,
                mean_input: 330.0,
            });
        }
        (small, large)
    }

    #[test]
    fn consolidation_saves_most_gpus() {
        let gpu = GpuSpec::h20();
        let cfg = PlannerConfig::production_default();
        let (small, large) = production_mix();
        let before = dedicated_gpus(&gpu, &small, &cfg) + dedicated_gpus(&gpu, &large, &cfg);
        let after = aegaeon_pool_gpus(&gpu, &small, &cfg) + aegaeon_pool_gpus(&gpu, &large, &cfg);
        let saving = 1.0 - after as f64 / before as f64;
        // Paper: 1,192 → 213 (82% saving). The shape — an order-of-GPUs
        // consolidation driven by sporadic rates — must reproduce.
        assert!(before > 200, "before = {before}");
        assert!(after < before / 3, "after = {after}, before = {before}");
        assert!(saving > 0.6, "saving = {saving:.2}");
    }

    #[test]
    fn min_pool_search_finds_a_small_pool_for_light_load() {
        use aegaeon_sim::{SimRng, SimTime};
        use aegaeon_workload::{LengthDist, TraceBuilder};
        let zoo = Zoo::standard();
        let models: Vec<ModelSpec> = Zoo::replicate(&zoo.market_band(), 8);
        let mut rng = SimRng::seed_from_u64(3);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(150.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 8, 0.05)
            .build(&mut rng);
        let base = AegaeonConfig::small_testbed(1, 1);
        let (gpus, att) = search_min_pool(
            &base,
            &GpuSpec::h800(),
            &models,
            &trace,
            SloSpec::paper_default(),
            0.9,
            16,
        )
        .expect("a pool within 16 GPUs must suffice");
        assert!(
            gpus <= 6,
            "8 sporadic models should pool onto few GPUs, got {gpus}"
        );
        assert!(att >= 0.9);
    }

    #[test]
    fn capacity_is_several_rps_for_small_models() {
        let zoo = Zoo::standard();
        let d = ModelDemand {
            spec: zoo.get("Qwen-7B").unwrap().clone(),
            rate: 0.1,
            mean_output: 250.0,
            mean_input: 330.0,
        };
        let cap = instance_capacity_rps(&GpuSpec::h800(), &d, 16);
        assert!(cap > 1.0 && cap < 50.0, "cap {cap}");
    }

    #[test]
    #[should_panic(expected = "one pool per TP")]
    fn mixed_tp_pools_are_rejected() {
        let zoo = Zoo::standard();
        let mk = |tp| ModelDemand {
            spec: zoo.get("Qwen-7B").unwrap().with_tp(tp),
            rate: 0.1,
            mean_output: 250.0,
            mean_input: 330.0,
        };
        let _ = aegaeon_pool_gpus(
            &GpuSpec::h20(),
            &[mk(1), mk(4)],
            &PlannerConfig::production_default(),
        );
    }
}
