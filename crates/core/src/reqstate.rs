//! Per-request runtime state.

use aegaeon_gpu::EventId;
use aegaeon_sim::SimTime;
use aegaeon_workload::SessionId;

use crate::sessionbook::SessPlace;

/// An unabsorbed claim on a session's retained KV prefix: the claimant
/// prefills only its delta and merges the retained blocks into its own KV
/// entry at the first point both live in the same cache (the decode GPU at
/// swap-in for GPU-resident prefixes, the node CPU cache at offload for
/// spilled ones).
#[derive(Debug, Clone, Copy)]
pub struct PrefixClaim {
    /// Retained tokens the claim covers (≤ the request's `prefix_tokens`).
    pub tokens: u32,
    /// Cache currently holding the session handle's blocks.
    pub src: SessPlace,
}

/// Where a request's KV cache currently lives. Block lists are tracked by
/// the owning [`aegaeon_engine::KvCache`]; this is only the location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvPlace {
    /// Not yet materialized (pre-prefill).
    None,
    /// On a prefill or decoding instance's GPU (possibly still in flight;
    /// see [`ReqState::kv_ready`]).
    Gpu,
    /// In a node's unified CPU cache.
    Cpu {
        /// Node index.
        node: u32,
    },
}

/// Lifecycle phase of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for / undergoing prefill.
    Prefill,
    /// In a decoding work list.
    Decode,
    /// All tokens produced.
    Done,
}

/// Mutable runtime state of one request.
#[derive(Debug, Clone)]
pub struct ReqState {
    /// Prompt length.
    pub input_tokens: u32,
    /// Oracle output length (simulation termination only).
    pub target_tokens: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// Output tokens produced so far.
    pub produced: u32,
    /// Generation instants (first token included).
    pub token_times: Vec<SimTime>,
    /// Current phase.
    pub phase: Phase,
    /// KV location.
    pub kv: KvPlace,
    /// Event guarding the latest swap-out of this request's KV (§5.3 rule
    /// ❷: a swap-in must wait on it).
    pub offload_event: Option<EventId>,
    /// Set while the request's KV is present on the decoding GPU and ready
    /// to decode.
    pub kv_ready: bool,
    /// Decoding instance the request is assigned to.
    pub decode_inst: Option<u32>,
    /// Instant prefill execution started (for breakdown accounting).
    pub prefill_start: Option<SimTime>,
    /// Instant prefill finished.
    pub prefill_end: Option<SimTime>,
    /// Accumulated decode execution seconds (steps it participated in).
    pub decode_exec_secs: f64,
    /// Accumulated explicit KV-transfer wait seconds (Figure 14 "data
    /// overhead", Figure 15 right).
    pub data_wait_secs: f64,
    /// Accumulated control-plane overhead seconds.
    pub control_secs: f64,
    /// Number of KV swaps (in + out) this request underwent.
    pub swaps: u32,
    /// Instant the request was dispatched to its decoding instance.
    pub decode_dispatch: Option<SimTime>,
    /// Instant the last token was produced.
    pub finished_at: Option<SimTime>,
    /// Set when the swap-in for the current turn has been issued.
    pub swapin_inflight: bool,
    /// Set when the request was handed off to another shard after a total
    /// tier loss (sharded runs only). A migrated request is locally
    /// resolved: it is never re-dispatched here and never completes here;
    /// the destination shard owns its outcome.
    pub migrated: bool,
    /// Agentic session this request is a turn of ([`SessionId::NONE`] for
    /// single-shot requests).
    pub session: SessionId,
    /// Zero-based turn index within the session.
    pub turn_index: u32,
    /// Leading prompt tokens shared with the session's prior turns.
    pub prefix_tokens: u32,
    /// Outstanding claim on the session's retained prefix, if any.
    pub prefix_claim: Option<PrefixClaim>,
    /// Set once the request prefilled only its delta off a claimed prefix.
    pub prefix_hit: bool,
    /// The claimed prefix was lost (its holder crashed) after prefill was
    /// sized against it; the next prefill touchpoint must discard the
    /// delta-only KV and recompute the full context.
    pub prefix_lost: bool,
}

impl ReqState {
    /// Fresh state for a request of `input_tokens`/`target_tokens` arriving
    /// at `arrival`.
    pub fn new(arrival: SimTime, input_tokens: u32, target_tokens: u32) -> ReqState {
        ReqState {
            input_tokens,
            target_tokens,
            arrival,
            produced: 0,
            token_times: Vec::new(),
            phase: Phase::Prefill,
            kv: KvPlace::None,
            offload_event: None,
            kv_ready: false,
            decode_inst: None,
            prefill_start: None,
            prefill_end: None,
            decode_exec_secs: 0.0,
            data_wait_secs: 0.0,
            control_secs: 0.0,
            swaps: 0,
            decode_dispatch: None,
            finished_at: None,
            swapin_inflight: false,
            migrated: false,
            session: SessionId::NONE,
            turn_index: 0,
            prefix_tokens: 0,
            prefix_claim: None,
            prefix_hit: false,
            prefix_lost: false,
        }
    }

    /// Tokens covered by an outstanding prefix claim (0 when none).
    pub fn claimed_tokens(&self) -> u32 {
        self.prefix_claim.map_or(0, |c| c.tokens)
    }

    /// Context length (prompt plus produced tokens).
    pub fn ctx_tokens(&self) -> u32 {
        self.input_tokens + self.produced
    }

    /// True once all target tokens are out.
    pub fn is_done(&self) -> bool {
        self.produced >= self.target_tokens
    }

    /// Records a produced token at `t`.
    pub fn push_token(&mut self, t: SimTime) {
        self.produced += 1;
        self.token_times.push(t);
        if self.is_done() {
            self.phase = Phase::Done;
            self.finished_at = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut r = ReqState::new(SimTime::ZERO, 100, 3);
        assert_eq!(r.ctx_tokens(), 100);
        r.push_token(SimTime::from_secs_f64(1.0));
        assert_eq!(r.phase, Phase::Prefill, "phase advances externally");
        r.push_token(SimTime::from_secs_f64(1.1));
        r.push_token(SimTime::from_secs_f64(1.2));
        assert!(r.is_done());
        assert_eq!(r.phase, Phase::Done);
        assert_eq!(r.ctx_tokens(), 103);
        assert_eq!(r.finished_at, Some(SimTime::from_secs_f64(1.2)));
    }
}
