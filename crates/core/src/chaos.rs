//! Deterministic chaos engine: seeded fault-process composition.
//!
//! Production fault tolerance (Figure 5) is only as good as the fault inputs
//! it is tested against. The old harness took a hand-written list of
//! `(time, kind, index)` crashes; this module replaces it with a [`FaultPlan`]
//! that *composes* stochastic fault processes — instance crashes, transient
//! link degradation, staging-buffer OOM, and proxy-visible stalls — all drawn
//! from the run's seeded SplitMix64 stream. Any failing scenario therefore
//! reproduces exactly from `(seed, plan)` alone: the plan's compact spec
//! string plus the base seed regenerate the identical fault schedule.
//!
//! The plan is *materialized* once at system construction into a sorted
//! [`FaultEvent`] list; the event loop then schedules each entry like any
//! other simulator event, keeping the hot path free of RNG calls.

use aegaeon_sim::SimRng;
use std::fmt;
use std::str::FromStr;

use crate::events::InstKind;

/// One concrete fault instance drawn from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop crash of one serving instance.
    Crash { kind: InstKind, idx: u32 },
    /// A PCIe/NVLink link runs at `factor` of nominal bandwidth for a window.
    LinkDegrade { link: u32, factor: f64 },
    /// The pinned stage buffer on one node is exhausted; host→device copies
    /// fall back to pageable DMA for the window.
    StageOom { node: u32 },
    /// The proxy's metadata path stalls: new arrivals retry with backoff.
    ProxyStall,
}

/// A scheduled fault: active from `at` until `until` (crashes are
/// instantaneous and carry `until == at`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Activation time, seconds.
    pub at: f64,
    /// End of the fault window, seconds (`== at` for crashes).
    pub until: f64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A seeded composition of stochastic fault processes.
///
/// Rates are events per second of simulated time; a rate of `0.0` disables
/// that process. `crashes` holds explicit, deterministic crash times (the
/// migration path for the old hand-written failure lists) and is injected
/// verbatim on top of the stochastic crash processes.
///
/// The plan serializes to a compact `key=value;` spec string via
/// [`fmt::Display`] and parses back with [`FromStr`], so a failing scenario
/// is reported as `(seed, plan)` and replayed from exactly those two values.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan-local seed, mixed with the run's base seed when materializing.
    pub seed: u64,
    /// Explicit crashes: `(seconds, kind, instance index)`.
    pub crashes: Vec<(f64, InstKind, u32)>,
    /// Poisson crash rate for prefill instances (events/sec).
    pub crash_rate_prefill: f64,
    /// Poisson crash rate for decoding instances (events/sec).
    pub crash_rate_decode: f64,
    /// Poisson rate of transient link-degradation windows (events/sec).
    pub link_rate: f64,
    /// Bandwidth multiplier during a degradation window, in `(0, 1]`.
    pub link_factor: f64,
    /// Mean length of a degradation window, seconds.
    pub link_secs: f64,
    /// Poisson rate of staging-buffer OOM windows (events/sec).
    pub stage_oom_rate: f64,
    /// Mean length of a staging-OOM window, seconds.
    pub stage_oom_secs: f64,
    /// Poisson rate of proxy stalls (events/sec).
    pub stall_rate: f64,
    /// Mean length of a proxy stall, seconds.
    pub stall_secs: f64,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            crash_rate_prefill: 0.0,
            crash_rate_decode: 0.0,
            link_rate: 0.0,
            link_factor: 0.25,
            link_secs: 5.0,
            stage_oom_rate: 0.0,
            stage_oom_secs: 5.0,
            stall_rate: 0.0,
            stall_secs: 1.0,
        }
    }

    /// A plan with only the given explicit crashes (legacy-list migration).
    pub fn crashes(list: &[(f64, InstKind, u32)]) -> Self {
        FaultPlan {
            crashes: list.to_vec(),
            ..FaultPlan::none()
        }
    }

    /// True when the plan can never produce a fault.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.crash_rate_prefill == 0.0
            && self.crash_rate_decode == 0.0
            && self.link_rate == 0.0
            && self.stage_oom_rate == 0.0
            && self.stall_rate == 0.0
    }

    /// Draws the concrete fault schedule for one run.
    ///
    /// Each fault process forks its own RNG stream from the combined
    /// `(base_seed, plan.seed)` root, so changing one rate never perturbs
    /// the draws of the others. Stochastic crashes pick a victim uniformly
    /// among instances of the kind that the *schedule so far* still leaves
    /// alive, and always leave at least one instance of each kind alive —
    /// losing the whole tier is a fatal condition the serving system
    /// asserts on, not a recoverable fault. Explicit `crashes` entries are
    /// injected verbatim (the caller opted into them).
    ///
    /// The returned list is sorted by activation time.
    pub fn materialize(
        &self,
        base_seed: u64,
        horizon_secs: f64,
        n_prefill: u32,
        n_decode: u32,
        n_links: u32,
        n_nodes: u32,
    ) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        let mut alive_prefill: Vec<u32> = (0..n_prefill).collect();
        let mut alive_decode: Vec<u32> = (0..n_decode).collect();
        for &(secs, kind, idx) in &self.crashes {
            let alive = match kind {
                InstKind::Prefill => &mut alive_prefill,
                InstKind::Decode => &mut alive_decode,
            };
            alive.retain(|&i| i != idx);
            out.push(FaultEvent {
                at: secs,
                until: secs,
                kind: FaultKind::Crash { kind, idx },
            });
        }

        let mut root = SimRng::seed_from_u64(base_seed ^ self.seed.rotate_left(17));
        let mut crash_rng = root.fork();
        let mut link_rng = root.fork();
        let mut oom_rng = root.fork();
        let mut stall_rng = root.fork();

        for (kind, rate) in [
            (InstKind::Prefill, self.crash_rate_prefill),
            (InstKind::Decode, self.crash_rate_decode),
        ] {
            if rate <= 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += crash_rng.exp(rate);
                if t >= horizon_secs {
                    break;
                }
                let alive = match kind {
                    InstKind::Prefill => &mut alive_prefill,
                    InstKind::Decode => &mut alive_decode,
                };
                // Keep one instance of each tier alive: total tier loss is
                // fatal by design, not a recoverable fault.
                if alive.len() <= 1 {
                    break;
                }
                let victim = alive.swap_remove(crash_rng.below(alive.len()));
                out.push(FaultEvent {
                    at: t,
                    until: t,
                    kind: FaultKind::Crash { kind, idx: victim },
                });
            }
        }

        if self.link_rate > 0.0 && n_links > 0 {
            let mut t = 0.0;
            loop {
                t += link_rng.exp(self.link_rate);
                if t >= horizon_secs {
                    break;
                }
                let dur = link_rng.exp(1.0 / self.link_secs.max(1e-6));
                out.push(FaultEvent {
                    at: t,
                    until: t + dur,
                    kind: FaultKind::LinkDegrade {
                        link: link_rng.below(n_links as usize) as u32,
                        factor: self.link_factor,
                    },
                });
            }
        }

        if self.stage_oom_rate > 0.0 && n_nodes > 0 {
            let mut t = 0.0;
            loop {
                t += oom_rng.exp(self.stage_oom_rate);
                if t >= horizon_secs {
                    break;
                }
                let dur = oom_rng.exp(1.0 / self.stage_oom_secs.max(1e-6));
                out.push(FaultEvent {
                    at: t,
                    until: t + dur,
                    kind: FaultKind::StageOom {
                        node: oom_rng.below(n_nodes as usize) as u32,
                    },
                });
            }
        }

        if self.stall_rate > 0.0 {
            let mut t = 0.0;
            loop {
                t += stall_rng.exp(self.stall_rate);
                if t >= horizon_secs {
                    break;
                }
                let dur = stall_rng.exp(1.0 / self.stall_secs.max(1e-6));
                out.push(FaultEvent {
                    at: t,
                    until: t + dur,
                    kind: FaultKind::ProxyStall,
                });
            }
        }

        out.sort_by(|a, b| a.at.total_cmp(&b.at));
        out
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    /// Compact `key=value;` spec. Only non-default fields are emitted, so
    /// the empty plan prints as `none`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut parts = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        for &(secs, kind, idx) in &self.crashes {
            let k = match kind {
                InstKind::Prefill => "p",
                InstKind::Decode => "d",
            };
            parts.push(format!("crash={secs}:{k}:{idx}"));
        }
        if self.crash_rate_prefill > 0.0 {
            parts.push(format!("cp={}", self.crash_rate_prefill));
        }
        if self.crash_rate_decode > 0.0 {
            parts.push(format!("cd={}", self.crash_rate_decode));
        }
        if self.link_rate > 0.0 {
            parts.push(format!(
                "link={}:{}:{}",
                self.link_rate, self.link_factor, self.link_secs
            ));
        }
        if self.stage_oom_rate > 0.0 {
            parts.push(format!(
                "oom={}:{}",
                self.stage_oom_rate, self.stage_oom_secs
            ));
        }
        if self.stall_rate > 0.0 {
            parts.push(format!("stall={}:{}", self.stall_rate, self.stall_secs));
        }
        write!(f, "{}", parts.join(";"))
    }
}

/// Error from parsing a [`FaultPlan`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError(pub String);

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan spec: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

impl FromStr for FaultPlan {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::none();
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(plan);
        }
        let num = |v: &str| -> Result<f64, PlanParseError> {
            v.parse::<f64>()
                .map_err(|_| PlanParseError(format!("bad number {v:?}")))
        };
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| PlanParseError(format!("missing '=' in {part:?}")))?;
            let fields: Vec<&str> = val.split(':').collect();
            match (key, fields.as_slice()) {
                ("seed", [v]) => {
                    plan.seed = v
                        .parse::<u64>()
                        .map_err(|_| PlanParseError(format!("bad seed {v:?}")))?;
                }
                ("crash", [secs, kind, idx]) => {
                    let kind = match *kind {
                        "p" => InstKind::Prefill,
                        "d" => InstKind::Decode,
                        other => return Err(PlanParseError(format!("bad crash kind {other:?}"))),
                    };
                    let idx = idx
                        .parse::<u32>()
                        .map_err(|_| PlanParseError(format!("bad crash index {idx:?}")))?;
                    plan.crashes.push((num(secs)?, kind, idx));
                }
                ("cp", [v]) => plan.crash_rate_prefill = num(v)?,
                ("cd", [v]) => plan.crash_rate_decode = num(v)?,
                ("link", [rate, factor, secs]) => {
                    plan.link_rate = num(rate)?;
                    plan.link_factor = num(factor)?;
                    plan.link_secs = num(secs)?;
                }
                ("oom", [rate, secs]) => {
                    plan.stage_oom_rate = num(rate)?;
                    plan.stage_oom_secs = num(secs)?;
                }
                ("stall", [rate, secs]) => {
                    plan.stall_rate = num(rate)?;
                    plan.stall_secs = num(secs)?;
                }
                _ => return Err(PlanParseError(format!("unknown field {part:?}"))),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            seed: 99,
            crashes: vec![(12.5, InstKind::Decode, 1)],
            crash_rate_prefill: 0.01,
            crash_rate_decode: 0.02,
            link_rate: 0.05,
            link_factor: 0.3,
            link_secs: 4.0,
            stage_oom_rate: 0.03,
            stage_oom_secs: 6.0,
            stall_rate: 0.02,
            stall_secs: 1.5,
        }
    }

    #[test]
    fn empty_plan_materializes_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.materialize(42, 1000.0, 4, 4, 8, 2).is_empty());
        assert_eq!(plan.to_string(), "none");
    }

    #[test]
    fn materialize_is_deterministic_in_seed_and_plan() {
        let plan = busy_plan();
        let a = plan.materialize(42, 600.0, 4, 6, 8, 2);
        let b = plan.materialize(42, 600.0, 4, 6, 8, 2);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let c = plan.materialize(43, 600.0, 4, 6, 8, 2);
        assert_ne!(a, c, "different base seed must change the schedule");
        let mut other = plan.clone();
        other.seed = 100;
        let d = other.materialize(42, 600.0, 4, 6, 8, 2);
        assert_ne!(a, d, "different plan seed must change the schedule");
    }

    #[test]
    fn materialized_schedule_is_sorted_and_windowed() {
        let events = busy_plan().materialize(7, 600.0, 4, 6, 8, 2);
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for e in &events {
            assert!(e.at >= 0.0 && e.at < 600.0 + 1e-9, "activation {e:?}");
            assert!(e.until >= e.at);
            if let FaultKind::Crash { .. } = e.kind {
                assert_eq!(e.at, e.until);
            }
        }
    }

    #[test]
    fn stochastic_crashes_leave_one_instance_per_tier() {
        let plan = FaultPlan {
            crash_rate_prefill: 10.0, // absurdly high: would kill everything
            crash_rate_decode: 10.0,
            ..FaultPlan::none()
        };
        let events = plan.materialize(3, 1000.0, 3, 4, 0, 0);
        let prefill_crashes = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::Crash {
                        kind: InstKind::Prefill,
                        ..
                    }
                )
            })
            .count();
        let decode_crashes = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::Crash {
                        kind: InstKind::Decode,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(prefill_crashes, 2, "must stop at one survivor");
        assert_eq!(decode_crashes, 3, "must stop at one survivor");
        let mut victims: Vec<u32> = events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash {
                    kind: InstKind::Decode,
                    idx,
                } => Some(idx),
                _ => None,
            })
            .collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), decode_crashes, "no victim crashes twice");
    }

    #[test]
    fn spec_string_roundtrips() {
        for plan in [
            FaultPlan::none(),
            busy_plan(),
            FaultPlan::crashes(&[(5.0, InstKind::Prefill, 0)]),
        ] {
            let spec = plan.to_string();
            let back: FaultPlan = spec.parse().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(plan, back, "spec {spec:?}");
            // And the roundtripped plan draws the identical schedule.
            assert_eq!(
                plan.materialize(11, 300.0, 4, 4, 8, 2),
                back.materialize(11, 300.0, 4, 4, 8, 2)
            );
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("crash=5.0:x:0".parse::<FaultPlan>().is_err());
        assert!("nonsense".parse::<FaultPlan>().is_err());
        assert!("wibble=1".parse::<FaultPlan>().is_err());
        assert!("link=0.1:0.5".parse::<FaultPlan>().is_err());
    }
}
