//! Incremental serving sessions: the open-system stepping driver.
//!
//! [`ServingSystem::run`] historically owned its whole dispatch loop: build
//! the queue, pop until drained, return the [`RunResult`]. A live gateway
//! needs the same machinery but *incrementally* — advance simulated time up
//! to a wall-clock deadline, accept requests injected from other threads in
//! between, and stream produced tokens back out. [`ServingSession`] is that
//! refactor: one stepping driver shared verbatim by the closed (batch) path
//! and the open (live) path, so there is exactly one dispatch loop in the
//! codebase and the batch path cannot drift from the live one.
//!
//! # Modes
//!
//! * **Closed** ([`ServingSession::closed`]): the whole trace is scheduled
//!   up front and `step_until(SimTime::MAX)` reproduces the historical
//!   run-to-completion loop bit for bit.
//! * **Open** ([`ServingSession::open`]): the session starts with an empty
//!   trace and requests arrive through a thread-safe
//!   [`Injector`](aegaeon_sim::Injector). The injection port stamps each
//!   request with a strictly increasing, strictly future simulated arrival
//!   and only releases it at a pop boundary where the stamp precedes every
//!   queued event, so injection can never reorder history.
//!
//! # Determinism argument
//!
//! An open session records every admitted request (stamp, model, lengths)
//! in arrival order. Replaying that recording through a fresh open session
//! ([`ServingSession::replay`]) pumps the same stamps through the same
//! admission rule against the same event-queue evolution, so every pop —
//! and therefore the [`RunResult::fingerprint`] — is identical to the live
//! run, no matter how wall-clock time sliced the live `step_until` calls.
//! Three details make this airtight:
//!
//! 1. **Stamps are strictly future** (`> now`), so an injected arrival can
//!    never tie with an event popped in the current batch, where FIFO
//!    sequence numbers would diverge between live and replay.
//! 2. **Quiescence break**: an open session stops popping the moment all
//!    admitted requests have completed and nothing is pending. Trailing
//!    daemon/sample ticks are *not* popped at a wall-determined instant;
//!    they run later in both live and replay iff they precede the next
//!    admitted stamp.
//! 3. **Fixed fault horizon**: the fault schedule and hard stop are
//!    materialized from the construction-time horizon, which the recorded
//!    trace preserves, so live and replay materialize identical fault
//!    plans.

use std::sync::mpsc;

use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::{
    injection_channel, EventQueue, FxHashMap, InjectionPort, Injector, SimTime, Timeline,
};
use aegaeon_workload::{Request, SessionId, Trace};

use crate::audit::{AuditReport, Auditor};
use crate::config::AegaeonConfig;
use crate::events::{Ev, TokenEv};
use crate::result::RunResult;
use crate::system::ServingSystem;

/// Destination for one request's tapped tokens. The session is the single
/// producer (tokens are delivered from the dispatch loop, in order); the
/// consumer side is whatever the embedder wires up — an [`mpsc`] receiver
/// in tests, or one of the gateway's bounded SPSC rings fanning out to the
/// I/O reactor that owns the client connection.
pub trait TokenSink: Send {
    /// Deliver one token. Returning `false` means the consumer is gone
    /// (client hung up); the session drops the sink and the simulated
    /// request still runs to completion.
    fn deliver(&mut self, tok: TokenEv) -> bool;
}

impl TokenSink for mpsc::Sender<TokenEv> {
    fn deliver(&mut self, tok: TokenEv) -> bool {
        self.send(tok).is_ok()
    }
}

/// A request injected into an open session from outside the simulation.
pub struct LiveRequest {
    /// Target model.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Total output length in tokens (≥ 1).
    pub output_tokens: u32,
    /// Agentic session this request belongs to ([`SessionId::NONE`] for
    /// standalone requests).
    pub session: SessionId,
    /// Zero-based turn index within the session.
    pub turn_index: u32,
    /// Leading tokens of the prompt shared verbatim with the session's
    /// previous turn (0 for standalone requests and first turns).
    pub prefix_tokens: u32,
    /// Optional token sink: every produced token is forwarded here (SSE
    /// streaming); the sink is dropped after the final token so the
    /// receiving side observes a clean end of stream.
    pub sink: Option<Box<dyn TokenSink>>,
}

impl LiveRequest {
    /// A standalone (sessionless) request — the common gateway case.
    pub fn single(
        model: ModelId,
        input_tokens: u32,
        output_tokens: u32,
        sink: Option<Box<dyn TokenSink>>,
    ) -> LiveRequest {
        LiveRequest {
            model,
            input_tokens,
            output_tokens,
            session: SessionId::NONE,
            turn_index: 0,
            prefix_tokens: 0,
            sink,
        }
    }
}

impl std::fmt::Debug for LiveRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRequest")
            .field("model", &self.model)
            .field("input_tokens", &self.input_tokens)
            .field("output_tokens", &self.output_tokens)
            .field("session", &self.session)
            .field("turn_index", &self.turn_index)
            .field("prefix_tokens", &self.prefix_tokens)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

/// Per-endpoint request classes the gateway reports through the session's
/// metrics registry (observer-only: excluded from result fingerprints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/completions`.
    Completions,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /v1/slo`.
    Slo,
}

/// Labeled instrument ids for one I/O reactor, registered by
/// [`ServingSession::configure_reactors`]. The names carry a Prometheus
/// `reactor="i"` label so `/metrics` exposes per-reactor health instead of
/// one aggregate that N reactors would trample.
struct ReactorIds {
    fds: aegaeon_telemetry::GaugeId,
    ready: aegaeon_telemetry::GaugeId,
    peak: aegaeon_telemetry::GaugeId,
    drops: aegaeon_telemetry::CounterId,
}

/// An incremental serving run: the [`ServingSystem`], its event queue, and
/// (in open mode) the external-injection port. See module docs.
pub struct ServingSession {
    sys: ServingSystem,
    q: EventQueue<Ev>,
    port: InjectionPort<LiveRequest>,
    injector: Injector<LiveRequest>,
    /// Admitted injected requests in arrival order (the replayable trace).
    injected: Vec<Request>,
    /// Token sinks keyed by request id; removed after the final token.
    sinks: FxHashMap<u64, Box<dyn TokenSink>>,
    /// Per-reactor labeled instruments (live gateway only; see
    /// [`ServingSession::configure_reactors`]).
    reactor_ids: Vec<ReactorIds>,
    /// Age of the gateway's rendered `/metrics` snapshot at scrape time
    /// (live gateway only; registered by
    /// [`ServingSession::configure_reactors`]).
    g_snapshot_age: aegaeon_telemetry::GaugeId,
    /// Construction-time horizon: replay must materialize the identical
    /// fault schedule, so [`ServingSession::injected_trace`] reports this
    /// value rather than the grown `trace.horizon`.
    live_horizon: SimTime,
    open: bool,
    halted: bool,
    /// Gateway admission rejections (429s), surfaced on the audit report.
    rejections: u64,
    /// Gateway slow-reader drops (bounded output queue overflows).
    slow_drops: u64,
    /// Event-dispatch runaway cap (matches the historical run loop).
    cap: u64,
}

impl ServingSession {
    /// A closed-system session: the whole trace is scheduled up front and
    /// stepping to [`SimTime::MAX`] reproduces [`ServingSystem::run`].
    pub fn closed(cfg: &AegaeonConfig, models: &[ModelSpec], trace: &Trace) -> ServingSession {
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut sys = ServingSystem::new(cfg.clone(), models, trace.clone());
        sys.start(&mut q);
        let (injector, port) = injection_channel();
        ServingSession {
            sys,
            q,
            port,
            injector,
            injected: Vec::new(),
            sinks: FxHashMap::default(),
            reactor_ids: Vec::new(),
            g_snapshot_age: aegaeon_telemetry::GaugeId::NONE,
            live_horizon: trace.horizon,
            open: false,
            halted: false,
            rejections: 0,
            slow_drops: 0,
            cap: 400_000_000,
        }
    }

    /// An open-system session: starts with an empty trace (faults are still
    /// materialized against `live_horizon`) and accepts requests through
    /// [`ServingSession::injector`]. The token tap is enabled so sinks
    /// receive every produced token.
    pub fn open(
        cfg: &AegaeonConfig,
        models: &[ModelSpec],
        live_horizon: SimTime,
    ) -> ServingSession {
        let trace = Trace {
            requests: Vec::new(),
            horizon: live_horizon,
        };
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut sys = ServingSystem::new(cfg.clone(), models, trace);
        sys.tap_enabled = true;
        sys.start(&mut q);
        let (injector, port) = injection_channel();
        ServingSession {
            sys,
            q,
            port,
            injector,
            injected: Vec::new(),
            sinks: FxHashMap::default(),
            reactor_ids: Vec::new(),
            g_snapshot_age: aegaeon_telemetry::GaugeId::NONE,
            live_horizon,
            open: true,
            halted: false,
            rejections: 0,
            slow_drops: 0,
            cap: 400_000_000,
        }
    }

    /// Replays a trace recorded by [`ServingSession::injected_trace`]
    /// through a fresh open session: all arrivals are queued on the
    /// injection channel up front (their recorded stamps are preserved
    /// verbatim) and the session is ready to step. Stepping to
    /// [`SimTime::MAX`] yields a result fingerprint-identical to the live
    /// session that recorded the trace.
    pub fn replay(cfg: &AegaeonConfig, models: &[ModelSpec], trace: &Trace) -> ServingSession {
        let session = Self::open(cfg, models, trace.horizon);
        for r in &trace.requests {
            session.injector.send(
                r.arrival(),
                LiveRequest {
                    model: r.model,
                    input_tokens: r.input_tokens,
                    output_tokens: r.output_tokens,
                    session: r.session,
                    turn_index: r.turn_index,
                    prefix_tokens: r.prefix_tokens,
                    sink: None,
                },
            );
        }
        session
    }

    /// Installs an invariant auditor (observer only).
    pub fn install_auditor(&mut self, auditor: Box<dyn Auditor + Send>) {
        self.sys.auditor = Some(auditor);
    }

    // ---- shard-coordinator hooks ---------------------------------------
    // Used only by `crate::shard`: a sharded run drives N closed sessions
    // in conservative windows and exchanges boundary events between them.

    /// Switches total-tier-loss handling from a fatal assert to a handoff
    /// pushed on the shard outbox. Must be set before the first step.
    pub(crate) fn enable_shard_mode(&mut self) {
        self.sys.shard_mode = true;
    }

    /// Drains the handoffs emitted since the last synchronization barrier,
    /// in emission order.
    pub(crate) fn take_handoffs(&mut self) -> Vec<crate::shard::Handoff> {
        std::mem::take(&mut self.sys.outbox)
    }

    /// Admits a request handed off by a peer shard at simulated instant
    /// `at` (strictly in this shard's future — the conservative window
    /// guarantees it) and returns the local trace index it was assigned.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn migrate_in(
        &mut self,
        at: SimTime,
        model: ModelId,
        input_tokens: u32,
        output_tokens: u32,
        session: SessionId,
        turn_index: u32,
        prefix_tokens: u32,
    ) -> u32 {
        let id = self.sys.admit_live(
            at,
            model,
            input_tokens,
            output_tokens,
            session,
            turn_index,
            prefix_tokens,
            &mut self.q,
        );
        id.0 as u32
    }

    /// A cloneable, thread-safe handle for injecting requests.
    pub fn injector(&self) -> Injector<LiveRequest> {
        self.injector.clone()
    }

    /// Current simulated time (the stamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// True once the runaway cap or the hard stop halted the session.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of completed requests so far.
    pub fn completed(&self) -> usize {
        self.sys.completed
    }

    /// Total admitted requests so far.
    pub fn admitted(&self) -> usize {
        self.sys.trace.len()
    }

    /// True when every admitted request has completed and no injection is
    /// pending admission (the open-mode quiescence condition).
    pub fn quiescent(&self) -> bool {
        self.sys.completed == self.sys.trace.len() && self.port.pending() == 0
    }

    /// Pumps the injection channel and admits every releasable request,
    /// then reports the next simulated instant at which the session has
    /// work to do (`None` when quiescent — the driver should block on its
    /// control channel instead of sleeping toward a deadline).
    pub fn next_due(&mut self) -> Option<SimTime> {
        self.admit_pending();
        if self.open && self.quiescent() {
            return None;
        }
        self.q.peek_time()
    }

    /// Advances the session, dispatching every event with a stamp `<=
    /// limit`, and returns the number of events dispatched. Open sessions
    /// additionally stop at quiescence (see module docs) so the stopping
    /// point is a function of simulation state alone, never of wall time.
    pub fn step_until(&mut self, limit: SimTime) -> u64 {
        self.step_bounded(limit, u64::MAX).0
    }

    /// [`ServingSession::step_until`] with an event budget: dispatches at
    /// most `max_events` events, so a caller that also owns an I/O loop
    /// (the gateway reactor) can interleave stepping with socket service
    /// instead of starving it during a backlog burn-down. Returns
    /// `(dispatched, truncated)` where `truncated` means the budget ran
    /// out while events at or before `limit` were still due. Stepping
    /// cadence never changes simulation outcomes, so slicing by budget is
    /// as determinism-safe as slicing by time.
    pub fn step_bounded(&mut self, limit: SimTime, max_events: u64) -> (u64, bool) {
        let mut dispatched: u64 = 0;
        loop {
            self.admit_pending();
            if self.open && self.quiescent() {
                break;
            }
            let Some(at) = self.q.peek_time() else {
                break;
            };
            if at > limit {
                break;
            }
            if dispatched >= max_events {
                return (dispatched, true);
            }
            let (t, ev) = self.q.pop().expect("peeked event");
            if t > self.sys.hard_stop || self.q.events_dispatched() > self.cap {
                self.halted = true;
                break;
            }
            self.sys.handle(ev, &mut self.q);
            dispatched += 1;
            // Take/put-back keeps the borrow checker happy: the auditor
            // reads the system through the `AuditView` facade.
            if let Some(mut a) = self.sys.auditor.take() {
                a.after_event(self.q.now(), &self.sys);
                self.sys.auditor = Some(a);
            }
            // Registry poller: runs in the dispatch loop (never as a queue
            // event, which would change event counts and tie-breaking) and
            // stamps samples at exact interval boundaries.
            while let Some(due) = self.sys.tel.sample_due(t) {
                self.sys.tel_poll(due);
            }
            self.flush_tokens();
        }
        (dispatched, false)
    }

    /// Pumps the injection channel and admits every request whose stamp
    /// precedes all queued events. Admission re-checks the queue after each
    /// release because admitting schedules the `Arrive` event, which
    /// changes the head of the queue.
    fn admit_pending(&mut self) {
        self.port.pump(&self.q);
        while let Some((stamp, lr)) = self.port.admit(&self.q) {
            let id = self.sys.admit_live(
                stamp,
                lr.model,
                lr.input_tokens,
                lr.output_tokens,
                lr.session,
                lr.turn_index,
                lr.prefix_tokens,
                &mut self.q,
            );
            self.injected.push(Request {
                id,
                model: lr.model,
                arrival_ns: stamp.as_nanos(),
                input_tokens: lr.input_tokens,
                output_tokens: lr.output_tokens,
                session: lr.session,
                turn_index: lr.turn_index,
                prefix_tokens: lr.prefix_tokens,
            });
            if let Some(sink) = lr.sink {
                self.sinks.insert(id.0, sink);
            }
        }
    }

    /// Forwards tapped tokens to their sinks; a request's sink is dropped
    /// after its final token so consumers observe end of stream.
    fn flush_tokens(&mut self) {
        if self.sys.tap.is_empty() {
            return;
        }
        for tok in self.sys.tap.drain(..) {
            let req = tok.req.0;
            let done = tok.done;
            let gone = match self.sinks.get_mut(&req) {
                // A gone consumer (client hung up) is not an error: the
                // simulated request still runs to completion.
                Some(sink) => !sink.deliver(tok),
                None => false,
            };
            if done || gone {
                self.sinks.remove(&req);
            }
        }
    }

    /// Drops every live token sink without consuming the session. Consumers
    /// observe end of stream (any queued ring contents stay poppable). The
    /// gateway's drain barrier calls this after the fast-forward reaches
    /// quiescence so reactors never wait on tokens that will not come —
    /// e.g. for streams truncated by a halt.
    pub fn close_sinks(&mut self) {
        self.sinks.clear();
    }

    /// The injected requests recorded so far as a replayable trace. The
    /// horizon is the construction-time horizon so a replay materializes
    /// the identical fault schedule (see module docs).
    pub fn injected_trace(&self) -> Trace {
        Trace {
            requests: self.injected.clone(),
            horizon: self.live_horizon,
        }
    }

    // ---- observer-only gateway instrumentation -------------------------
    // These touch the metrics registry, which result fingerprints exclude,
    // so calling them (or not) cannot perturb the differential replay.

    /// Sets the wall-clock lag gauge (how far simulated time trails the
    /// clock driver's target), in seconds.
    pub fn set_wall_lag(&mut self, secs: f64) {
        let id = self.sys.tm.g_wall_lag;
        self.sys.tel.metrics.set(id, secs);
    }

    /// Counts one served request on an endpoint.
    pub fn note_endpoint(&mut self, ep: Endpoint) {
        let id = match ep {
            Endpoint::Completions => self.sys.tm.c_http_completions,
            Endpoint::Metrics => self.sys.tm.c_http_metrics,
            Endpoint::Healthz => self.sys.tm.c_http_healthz,
            Endpoint::Slo => self.sys.tm.c_http_slo,
        };
        self.sys.tel.metrics.inc(id, 1);
    }

    /// Counts one admission rejection (429) in both the registry and the
    /// rejection book surfaced on the audit report.
    pub fn note_rejection(&mut self) {
        self.rejections += 1;
        let id = self.sys.tm.c_gw_rejected;
        self.sys.tel.metrics.inc(id, 1);
    }

    /// Total rejections recorded via [`ServingSession::note_rejection`].
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Registers labeled per-reactor instruments for an N-reactor gateway:
    /// `reactor_registered_fds{reactor="i"}`, `reactor_ready_depth{...}`,
    /// `reactor_peak_streams{...}` gauges and a `gateway_slow_drops{...}`
    /// counter per reactor. Prometheus text renders the label verbatim from
    /// the registered name. Observer-only (the registry is excluded from
    /// fingerprints) and never called on replay, so configuring any reactor
    /// count cannot perturb the differential. Call once, before stepping.
    pub fn configure_reactors(&mut self, n: usize) {
        assert!(self.reactor_ids.is_empty(), "reactors already configured");
        let reg = &mut self.sys.tel.metrics;
        self.reactor_ids = (0..n)
            .map(|i| ReactorIds {
                fds: reg.gauge(&format!("reactor_registered_fds{{reactor=\"{i}\"}}")),
                ready: reg.gauge(&format!("reactor_ready_depth{{reactor=\"{i}\"}}")),
                peak: reg.gauge(&format!("reactor_peak_streams{{reactor=\"{i}\"}}")),
                drops: reg.counter(&format!("gateway_slow_drops{{reactor=\"{i}\"}}")),
            })
            .collect();
        self.g_snapshot_age = reg.gauge("metrics_snapshot_age_ms");
    }

    /// Sets the `metrics_snapshot_age_ms` gauge: how stale the rendered
    /// `/metrics` snapshot was when the sim thread last (re-)rendered it.
    /// The gateway records the age observed *at render time*, so a scrape
    /// that forced a refresh reports the staleness it actually saw.
    pub fn note_snapshot_age(&mut self, age_ms: f64) {
        let id = self.g_snapshot_age;
        self.sys.tel.metrics.set(id, age_ms);
    }

    /// Renders the SLO observatory and switch-cost attribution ledger as a
    /// JSON document (the `GET /v1/slo` body). Observer-only: reads
    /// telemetry state that result fingerprints exclude.
    pub fn slo_snapshot_json(&self) -> String {
        aegaeon_telemetry::slo_json(&self.sys.tel.slo, &self.sys.tel.attrib)
    }

    /// Counts one slow-reader drop on a reactor: a streaming connection
    /// whose bounded output queue overflowed because the client stopped
    /// reading. The simulated request still runs to completion (a hung-up
    /// client never perturbs the simulation); only the gateway-side stream
    /// is severed.
    pub fn note_slow_drop(&mut self, reactor: usize) {
        self.slow_drops += 1;
        if let Some(ids) = self.reactor_ids.get(reactor) {
            self.sys.tel.metrics.inc(ids.drops, 1);
        }
    }

    /// Total slow-reader drops recorded via
    /// [`ServingSession::note_slow_drop`] across all reactors.
    pub fn slow_drops(&self) -> u64 {
        self.slow_drops
    }

    /// Sets one reactor's health gauges: currently registered descriptors,
    /// the size of the last readiness batch its event loop serviced, and
    /// its peak concurrent stream count so far.
    pub fn set_reactor_gauges(
        &mut self,
        reactor: usize,
        registered_fds: usize,
        ready_depth: usize,
        peak_streams: usize,
    ) {
        if let Some(ids) = self.reactor_ids.get(reactor) {
            let (fds, ready, peak) = (ids.fds, ids.ready, ids.peak);
            self.sys.tel.metrics.set(fds, registered_fds as f64);
            self.sys.tel.metrics.set(ready, ready_depth as f64);
            self.sys.tel.metrics.set(peak, peak_streams as f64);
        }
    }

    /// Reads a counter total by name (e.g. `"proxy_retries"`); 0.0 when the
    /// counter does not exist.
    pub fn counter(&self, name: &str) -> f64 {
        self.sys
            .tel
            .metrics
            .counter_totals()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Direct access to the metrics registry (Prometheus export).
    pub fn metrics(&self) -> &aegaeon_telemetry::MetricsRegistry {
        &self.sys.tel.metrics
    }

    /// Finishes the session: drops all token sinks (streaming clients see
    /// end of stream), closes the auditor, and returns the result plus the
    /// audit report when an auditor was installed.
    pub fn finish(mut self) -> (RunResult, Option<AuditReport>) {
        self.sinks.clear();
        let report = self.sys.auditor.take().map(|mut a| {
            a.at_finish(self.q.now(), &self.sys);
            let mut rep = a.take_report();
            rep.rejections = self.rejections;
            rep
        });
        if let Some(rep) = &report {
            // Run-level auditor stats flow through the registry, same code
            // path as every other counter.
            let checks = self.sys.tm.c_audit_checks;
            let violations = self.sys.tm.c_audit_violations;
            self.sys.tel.metrics.set_counter(checks, rep.events_checked);
            self.sys
                .tel
                .metrics
                .set_counter(violations, rep.violations.len() as u64);
        }
        (self.sys.finish(&self.q), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::Zoo;
    use aegaeon_sim::{SimDur, SimRng};
    use aegaeon_workload::{LengthDist, TraceBuilder};

    fn small_trace(n_models: u32, rate: f64, secs: f64, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed);
        TraceBuilder::new(SimTime::from_secs_f64(secs), LengthDist::sharegpt())
            .uniform_models(&mut rng, n_models, rate)
            .build(&mut rng)
    }

    fn models(n: usize) -> Vec<ModelSpec> {
        let zoo = Zoo::standard();
        Zoo::replicate(&zoo.market_band(), n)
    }

    /// The closed session IS the historical run loop: same fingerprint.
    #[test]
    fn closed_session_matches_run() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let trace = small_trace(2, 0.1, 60.0, 11);
        let direct = ServingSystem::run(&cfg, &models(2), &trace);
        let mut session = ServingSession::closed(&cfg, &models(2), &trace);
        session.step_until(SimTime::MAX);
        let (via_session, _) = session.finish();
        assert_eq!(direct.fingerprint(), via_session.fingerprint());
    }

    /// Injecting between arbitrary stepping slices and replaying the
    /// recorded trace offline produce identical fingerprints: live
    /// execution cadence is invisible to the simulation.
    #[test]
    fn open_injection_replays_fingerprint_identical() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let specs = models(3);
        let plan = small_trace(3, 0.15, 45.0, 12);
        let horizon = plan.horizon;

        let mut live = ServingSession::open(&cfg, &specs, horizon);
        let inj = live.injector();
        // Inject in dribbles, stepping a ragged sequence of slices between
        // sends so admissions land at many different queue states.
        let mut slice = SimTime::from_nanos(0);
        for (i, r) in plan.requests.iter().enumerate() {
            assert!(inj.send(
                r.arrival(),
                LiveRequest::single(r.model, r.input_tokens, r.output_tokens, None),
            ));
            if i % 3 == 0 {
                slice += SimDur::from_millis(700 * (i as u64 % 5 + 1));
                live.step_until(slice);
            }
        }
        live.step_until(SimTime::MAX);
        assert!(live.quiescent(), "live session must drain");
        let recorded = live.injected_trace();
        let (live_result, _) = live.finish();
        assert_eq!(live_result.completed, plan.len());

        let mut replayed = ServingSession::replay(&cfg, &specs, &recorded);
        replayed.step_until(SimTime::MAX);
        let (replay_result, _) = replayed.finish();
        assert_eq!(
            live_result.fingerprint(),
            replay_result.fingerprint(),
            "live and offline replay must be indistinguishable"
        );
    }

    /// Same as above but with the auditor installed on both sides: the
    /// auditor observes a causally valid history in live mode too.
    #[test]
    fn open_injection_passes_audit() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let specs = models(2);
        let plan = small_trace(2, 0.1, 30.0, 13);

        let mut live = ServingSession::open(&cfg, &specs, plan.horizon);
        live.install_auditor(Box::new(crate::audit::InvariantAuditor::new()));
        let inj = live.injector();
        for r in &plan.requests {
            inj.send(
                r.arrival(),
                LiveRequest::single(r.model, r.input_tokens, r.output_tokens, None),
            );
            live.step_until(live.now() + SimDur::from_secs(2));
        }
        live.step_until(SimTime::MAX);
        let (result, report) = live.finish();
        let report = report.expect("auditor installed");
        assert!(report.ok(), "live audit failed:\n{report}");
        assert_eq!(result.completed, plan.len());
    }

    /// Regression: a request whose entire output is the prefill's first
    /// token must retire there. Dispatching it to decode parked it
    /// forever (decode batches skip done requests), leaking its
    /// admission slot and tripping the auditor's conservation check.
    #[test]
    fn single_token_requests_retire_at_prefill() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let specs = models(2);
        let n = 40;
        let mut live = ServingSession::open(&cfg, &specs, SimTime::from_secs_f64(120.0));
        live.install_auditor(Box::new(crate::audit::InvariantAuditor::new()));
        let inj = live.injector();
        let (tx, rx) = mpsc::channel();
        for i in 0..n {
            inj.send(
                SimTime::from_secs_f64(1.0 + i as f64 * 0.25),
                LiveRequest::single(
                    ModelId((i % 2) as u32),
                    32,
                    1,
                    Some(Box::new(tx.clone())),
                ),
            );
        }
        drop(tx);
        live.step_until(SimTime::MAX);
        assert!(live.quiescent(), "single-token requests must not park");
        let toks: Vec<TokenEv> = rx.iter().collect();
        assert_eq!(toks.len(), n, "each request streams exactly one token");
        assert!(toks.iter().all(|t| t.index == 0 && t.done));
        let (result, report) = live.finish();
        assert_eq!(result.completed, n);
        let report = report.expect("auditor installed");
        assert!(report.ok(), "audit failed:\n{report}");
    }

    /// Token sinks stream every produced token in order and close after
    /// the final token.
    #[test]
    fn token_sink_streams_all_tokens_then_closes() {
        let cfg = AegaeonConfig::small_testbed(1, 1);
        let specs = models(1);
        let mut live = ServingSession::open(&cfg, &specs, SimTime::from_secs_f64(30.0));
        let inj = live.injector();
        let (tx, rx) = mpsc::channel();
        inj.send(
            SimTime::from_secs_f64(1.0),
            LiveRequest::single(ModelId(0), 64, 7, Some(Box::new(tx))),
        );
        live.step_until(SimTime::MAX);
        let toks: Vec<TokenEv> = rx.iter().collect(); // ends when sender drops
        assert_eq!(toks.len(), 7, "one event per produced token");
        for (i, t) in toks.iter().enumerate() {
            assert_eq!(t.index, i as u32);
            assert_eq!(t.done, i == 6);
        }
        assert!(toks.windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// A proxy stall window hit by live-injected arrivals drives the
    /// `Ev::Retry` backoff path: retries are counted and every request
    /// still completes.
    #[test]
    fn live_injection_rides_out_proxy_stalls_via_retry() {
        let mut cfg = AegaeonConfig::small_testbed(1, 1);
        cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
        // Saturate the horizon with stall windows so arrivals are certain
        // to land inside one.
        cfg.faults.stall_rate = 1.0;
        cfg.faults.stall_secs = 3.0;
        let specs = models(1);
        let mut live = ServingSession::open(&cfg, &specs, SimTime::from_secs_f64(40.0));
        let inj = live.injector();
        for i in 0..12u64 {
            inj.send(
                SimTime::from_secs_f64((1 + 3 * i) as f64),
                LiveRequest::single(ModelId(0), 64, 4, None),
            );
        }
        live.step_until(SimTime::MAX);
        assert!(live.quiescent());
        let retries = live.counter("proxy_retries");
        assert!(retries > 0.0, "expected stalled dispatches to retry");
        let (result, _) = live.finish();
        assert_eq!(result.completed, 12);
    }
}
