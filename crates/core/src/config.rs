//! Serving-system configuration.

use aegaeon_engine::{AutoscaleOpts, InitCosts};
use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
use aegaeon_sim::SimDur;

/// Configuration of an Aegaeon deployment.
#[derive(Debug, Clone)]
pub struct AegaeonConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Tensor-parallel degree of every instance (1 in the main experiments,
    /// 4 in the large-model study).
    pub tp: u32,
    /// Number of instances dedicated to prefill; the rest decode (§4.1).
    pub prefill_instances: usize,
    /// §5 optimization flags (T0–T3).
    pub opts: AutoscaleOpts,
    /// Engine component-initialization costs (Figure 7).
    pub init_costs: InitCosts,
    /// Maximum accumulative group size in Algorithm 1.
    pub max_gpsize: u32,
    /// Maximum decoding quota in Equation (3), seconds.
    pub qmax: f64,
    /// Target TBT used by the decoding quota computation, seconds. (The SLO
    /// itself is applied at metric time; the scheduler needs `d` online.)
    pub target_tbt: f64,
    /// Proxy dispatch latency (metadata sync via the shared store).
    pub proxy_latency: SimDur,
    /// Per-request control-plane overhead charged per KV swap (index
    /// tracking, CUDA event manipulation) — Figure 14's "control overhead".
    pub control_overhead_per_swap: SimDur,
    /// Eq. (4) switch-estimate correction factor β (×`size/bw`).
    pub beta: f64,
    /// Host Model Cache capacity per node.
    pub model_cache_bytes: u64,
    /// Unified CPU KV cache capacity per node.
    pub cpu_kv_bytes: u64,
    /// Slab size of the unified KV caches.
    pub slab_bytes: u64,
    /// Tokens per KV block.
    pub block_tokens: u32,
    /// Remote registry bandwidth for model-cache misses, bytes/s.
    pub remote_bw: f64,
    /// Fraction of VRAM the engine manages (rest left to the tensor lib).
    pub vram_usable: f64,
    /// Move-list reclamation daemon period.
    pub daemon_period: SimDur,
    /// Statistics sampling period (fragmentation, utilization).
    pub sample_period: SimDur,
    /// Extra simulated time after the last arrival before the run is cut.
    pub drain_window: SimDur,
    /// RNG seed.
    pub seed: u64,
    /// Record a schedule trace (timeline figures).
    pub trace_schedule: bool,
    /// Expected decode tokens used for batch-size headroom when the oracle
    /// output length is unknown (Aegaeon never reads the oracle).
    pub expected_output_tokens: u32,
    /// Keep preempted batches' KV resident on the GPU when the unified
    /// cache has headroom, instead of always offloading at turn end (an
    /// extension beyond the paper's offload-on-preemption; saves PCIe
    /// traffic at the cost of VRAM pressure).
    pub kv_residency: bool,
    /// Resident weight slots per instance (§8 future work: "Aegaeon can
    /// potentially incorporate multiplexing by dynamically switching
    /// colocated models"). With 2+ slots, switching among colocated models
    /// is free and the spare slot doubles as the prefetch target; VRAM for
    /// KV shrinks accordingly. Falls back to 1 when models do not fit.
    pub weight_slots: u32,
    /// Seeded fault composition (chaos engine): instance crashes (the Fig. 5
    /// fault-tolerance path), transient link degradation, staging-buffer
    /// OOM, and proxy stalls. [`crate::chaos::FaultPlan::none`] disables all
    /// fault injection.
    pub faults: crate::chaos::FaultPlan,
    /// Delay before the proxy's status sync notices a dead instance and
    /// recovers its requests (heartbeat period).
    pub failover_latency: SimDur,
    /// Session-affinity scheduling for agentic multi-turn traffic: a
    /// finished turn's KV is retained under its session's reserved handle
    /// (on-GPU when the unified cache has headroom, spilled to the CPU
    /// cache otherwise), and the next turn of the session prefills only its
    /// fresh delta when the retained prefix can be claimed. Off by default:
    /// with it off the subsystem is fully inert and every session turn
    /// recomputes its prefix like a single-shot request.
    pub session_affinity: bool,
    /// How long retained session KV may sit idle across a think gap before
    /// the reclamation daemon evicts it (the keep-vs-swap economics knob:
    /// longer TTLs buy prefix hits with VRAM/DRAM residency).
    pub session_kv_ttl: SimDur,
    /// Run the always-on invariant auditor alongside the dispatch loop.
    /// Purely observational: results are bit-identical either way.
    pub audit: bool,
    /// Telemetry (request-lifecycle spans + sampled metrics). Observer
    /// only, like the auditor: results are bit-identical either way.
    pub telemetry: aegaeon_telemetry::TelemetrySpec,
}

impl AegaeonConfig {
    /// The paper's main testbed (§7.1/§7.2): 2 nodes × 8 H800, TP = 1,
    /// 6 prefill + 10 decoding instances, full optimizations.
    pub fn paper_testbed() -> AegaeonConfig {
        AegaeonConfig {
            cluster: ClusterSpec::paper_testbed(),
            tp: 1,
            prefill_instances: 6,
            opts: AutoscaleOpts::t3(),
            init_costs: InitCosts::paper_default(),
            max_gpsize: 8,
            qmax: 4.0,
            target_tbt: 0.1,
            proxy_latency: SimDur::from_micros(500),
            control_overhead_per_swap: SimDur::from_micros(300),
            beta: 1.25,
            model_cache_bytes: 1536 << 30,
            cpu_kv_bytes: 320 << 30,
            slab_bytes: 128 << 20,
            block_tokens: 16,
            remote_bw: 5e9,
            vram_usable: 0.90,
            daemon_period: SimDur::from_millis(50),
            sample_period: SimDur::from_secs(1),
            drain_window: SimDur::from_secs(240),
            seed: 42,
            trace_schedule: false,
            expected_output_tokens: 256,
            kv_residency: false,
            weight_slots: 1,
            faults: crate::chaos::FaultPlan::none(),
            failover_latency: SimDur::from_secs(2),
            session_affinity: false,
            session_kv_ttl: SimDur::from_secs(120),
            audit: false,
            telemetry: aegaeon_telemetry::TelemetrySpec::disabled(),
        }
    }

    /// A small testbed for tests/examples: one node with
    /// `prefill + decode` H800 GPUs, TP = 1.
    pub fn small_testbed(prefill: usize, decode: usize) -> AegaeonConfig {
        let mut cfg = Self::paper_testbed();
        cfg.cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                gpus: (prefill + decode) as u32,
                gpu: GpuSpec::h800(),
                dram_bytes: 1 << 40,
                nic_bw: 25e9,
            },
        );
        cfg.prefill_instances = prefill;
        cfg
    }

    /// The §7.4 lower-end testbed: one node with 4 A10 GPUs, 2 prefill +
    /// 2 decoding instances, prefetching disabled (24 GB VRAM cannot hold
    /// two models).
    pub fn a10_testbed() -> AegaeonConfig {
        let mut cfg = Self::paper_testbed();
        cfg.cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                gpus: 4,
                gpu: GpuSpec::a10(),
                dram_bytes: 512 << 30,
                nic_bw: 25e9,
            },
        );
        cfg.prefill_instances = 2;
        cfg.opts.prefetch = false;
        cfg
    }

    /// The §7.4 large-model testbed: one node with 8 H800, TP = 4 (one
    /// prefill + one decoding instance).
    pub fn tp4_testbed() -> AegaeonConfig {
        let mut cfg = Self::paper_testbed();
        cfg.cluster = ClusterSpec::homogeneous(1, NodeSpec::h800_node());
        cfg.tp = 4;
        cfg.prefill_instances = 1;
        cfg
    }

    /// Number of serving instances (TP groups) in the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (TP groups must not
    /// straddle nodes; prefill instances must leave at least one decoder).
    pub fn instance_count(&self) -> usize {
        let mut total = 0usize;
        for node in &self.cluster.nodes {
            assert!(
                node.gpus % self.tp == 0,
                "TP groups must not straddle nodes"
            );
            total += (node.gpus / self.tp) as usize;
        }
        assert!(
            self.prefill_instances < total,
            "need at least one decoding instance ({} instances, {} prefill)",
            total,
            self.prefill_instances
        );
        total
    }

    /// Number of decoding instances.
    pub fn decode_instances(&self) -> usize {
        self.instance_count() - self.prefill_instances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_splits_6_plus_10() {
        let cfg = AegaeonConfig::paper_testbed();
        assert_eq!(cfg.instance_count(), 16);
        assert_eq!(cfg.decode_instances(), 10);
    }

    #[test]
    fn tp4_testbed_has_two_instances() {
        let cfg = AegaeonConfig::tp4_testbed();
        assert_eq!(cfg.instance_count(), 2);
        assert_eq!(cfg.decode_instances(), 1);
    }

    #[test]
    fn a10_disables_prefetch() {
        let cfg = AegaeonConfig::a10_testbed();
        assert!(!cfg.opts.prefetch);
        assert!(cfg.opts.fine_sync);
    }

    #[test]
    #[should_panic(expected = "decoding instance")]
    fn all_prefill_is_rejected() {
        let mut cfg = AegaeonConfig::small_testbed(2, 2);
        cfg.prefill_instances = 4;
        let _ = cfg.instance_count();
    }
}
