//! Run results and derived reports.

use aegaeon_metrics::{attainment, AttainmentReport, BreakdownAcc, RequestOutcome};
use aegaeon_mem::frag::FragRow;
use aegaeon_sim::{SimTime, TraceLog};
use aegaeon_workload::SloSpec;

/// Everything a serving run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Per-request outcomes (token timestamps).
    pub outcomes: Vec<RequestOutcome>,
    /// The workload horizon (attainment deadline cutoff).
    pub horizon: SimTime,
    /// Simulated instant the run ended.
    pub end_time: SimTime,
    /// Latency-stage breakdown (Figure 14).
    pub breakdown: BreakdownAcc,
    /// Preemptive auto-scaling latencies, seconds (Figure 15 left).
    pub scale_latencies: Vec<f64>,
    /// Per-request KV synchronization overhead, seconds (Figure 15 right).
    pub kv_sync_per_request: Vec<f64>,
    /// Unified CPU cache fragmentation rows (Figure 16).
    pub frag_rows: Vec<FragRow>,
    /// Compute-busy seconds per GPU.
    pub gpu_busy: Vec<f64>,
    /// Periodic samples of cumulative per-GPU compute-busy seconds.
    pub util_samples: Vec<(SimTime, Vec<f64>)>,
    /// Requests that finished.
    pub completed: usize,
    /// Requests in the trace.
    pub total_requests: usize,
    /// Models deployed.
    pub model_count: usize,
    /// Preemptive scale-ups performed.
    pub scale_count: u64,
    /// Scale-ups whose weights were already prefetched.
    pub prefetch_hits: u64,
    /// KV swaps performed (in + out).
    pub swaps: u64,
    /// Simulation events dispatched.
    pub events: u64,
    /// Schedule trace (when enabled).
    pub schedule: TraceLog,
}

impl RunResult {
    /// Token-level SLO attainment under `slo`.
    pub fn attainment(&self, slo: SloSpec) -> AttainmentReport {
        attainment(&self.outcomes, slo, self.horizon)
    }

    /// Mean GPU compute utilization over the run.
    pub fn mean_gpu_utilization(&self) -> f64 {
        if self.gpu_busy.is_empty() || self.end_time == SimTime::ZERO {
            return 0.0;
        }
        let total: f64 = self.gpu_busy.iter().sum();
        total / (self.gpu_busy.len() as f64 * self.end_time.as_secs_f64())
    }

    /// Fraction of scale-ups served from the prefetch region.
    pub fn prefetch_hit_ratio(&self) -> f64 {
        if self.scale_count == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.scale_count as f64
        }
    }
}
