//! Run results and derived reports.

use aegaeon_mem::frag::FragRow;
use aegaeon_metrics::{attainment, AttainmentReport, BreakdownAcc, RequestOutcome};
use aegaeon_sim::{SimTime, TraceLog};
use aegaeon_workload::SloSpec;

/// Everything a serving run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Per-request outcomes (token timestamps).
    pub outcomes: Vec<RequestOutcome>,
    /// The workload horizon (attainment deadline cutoff).
    pub horizon: SimTime,
    /// Simulated instant the run ended.
    pub end_time: SimTime,
    /// Latency-stage breakdown (Figure 14).
    pub breakdown: BreakdownAcc,
    /// Preemptive auto-scaling latencies, seconds (Figure 15 left).
    pub scale_latencies: Vec<f64>,
    /// Per-request KV synchronization overhead, seconds (Figure 15 right).
    pub kv_sync_per_request: Vec<f64>,
    /// Unified CPU cache fragmentation rows (Figure 16).
    pub frag_rows: Vec<FragRow>,
    /// Compute-busy seconds per GPU.
    pub gpu_busy: Vec<f64>,
    /// Periodic samples of cumulative per-GPU compute-busy seconds.
    pub util_samples: Vec<(SimTime, Vec<f64>)>,
    /// Requests that finished.
    pub completed: usize,
    /// Requests in the trace.
    pub total_requests: usize,
    /// Models deployed.
    pub model_count: usize,
    /// Preemptive scale-ups performed.
    pub scale_count: u64,
    /// Scale-ups whose weights were already prefetched.
    pub prefetch_hits: u64,
    /// KV swaps performed (in + out).
    pub swaps: u64,
    /// Session turns that prefilled only their delta off a retained prefix.
    pub prefix_hits: u64,
    /// Prefill tokens skipped thanks to claimed session prefixes.
    pub prefill_tokens_reused: u64,
    /// Shared-prefix tokens that had to be prefilled again (affinity off,
    /// miss, eviction, or crash-forced recomputation).
    pub prefill_tokens_recomputed: u64,
    /// Simulation events dispatched.
    pub events: u64,
    /// Schedule trace (when enabled).
    pub schedule: TraceLog,
    /// Request-lifecycle spans and sampled metrics (when enabled).
    pub telemetry: aegaeon_telemetry::Telemetry,
}

impl RunResult {
    /// Token-level SLO attainment under `slo`.
    pub fn attainment(&self, slo: SloSpec) -> AttainmentReport {
        attainment(&self.outcomes, slo, self.horizon)
    }

    /// Mean GPU compute utilization over the run.
    pub fn mean_gpu_utilization(&self) -> f64 {
        if self.gpu_busy.is_empty() || self.end_time == SimTime::ZERO {
            return 0.0;
        }
        let total: f64 = self.gpu_busy.iter().sum();
        total / (self.gpu_busy.len() as f64 * self.end_time.as_secs_f64())
    }

    /// Fraction of scale-ups served from the prefetch region.
    pub fn prefetch_hit_ratio(&self) -> f64 {
        if self.scale_count == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.scale_count as f64
        }
    }

    /// Order-sensitive hash over every *behavioral* field — everything the
    /// simulation produced except the observer-only artifacts (`schedule`,
    /// `telemetry`). The differential telemetry test asserts this is
    /// bit-identical with telemetry on and off.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = aegaeon_sim::FxHasher::default();
        for o in &self.outcomes {
            o.id.0.hash(&mut h);
            o.model.0.hash(&mut h);
            o.arrival.as_nanos().hash(&mut h);
            o.target_tokens.hash(&mut h);
            for t in &o.token_times {
                t.as_nanos().hash(&mut h);
            }
        }
        self.horizon.as_nanos().hash(&mut h);
        self.end_time.as_nanos().hash(&mut h);
        format!("{:?}", self.breakdown).hash(&mut h);
        for v in &self.scale_latencies {
            v.to_bits().hash(&mut h);
        }
        for v in &self.kv_sync_per_request {
            v.to_bits().hash(&mut h);
        }
        format!("{:?}", self.frag_rows).hash(&mut h);
        for v in &self.gpu_busy {
            v.to_bits().hash(&mut h);
        }
        for (t, busy) in &self.util_samples {
            t.as_nanos().hash(&mut h);
            for v in busy {
                v.to_bits().hash(&mut h);
            }
        }
        self.completed.hash(&mut h);
        self.total_requests.hash(&mut h);
        self.model_count.hash(&mut h);
        self.scale_count.hash(&mut h);
        self.prefetch_hits.hash(&mut h);
        self.swaps.hash(&mut h);
        self.prefix_hits.hash(&mut h);
        self.prefill_tokens_reused.hash(&mut h);
        self.prefill_tokens_recomputed.hash(&mut h);
        self.events.hash(&mut h);
        h.finish()
    }
}
