//! Unified (non-disaggregated) token-level schedulers — the Figure 6 study.
//!
//! §4.1 argues that scheduling prefill and decoding jobs on the *same* GPU
//! instance is workload-sensitive: prefill-first scheduling harms TBT under
//! arrival bursts, decoding-first scheduling harms TTFT under long inputs,
//! while disaggregation balances both. This module is a compact,
//! deterministic micro-simulator over a handful of requests that renders
//! those three exemplar schedules and counts their token-level SLO
//! violations. The full system ([`crate::system`]) implements only the
//! disaggregated design.

use aegaeon_sim::{SimTime, TraceKind, TraceLog};

/// Scheduling policy for the micro-study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnifiedPolicy {
    /// Pending prefills always preempt decoding (Figure 6a).
    PrefillFirst,
    /// Resident decoding always precedes new prefills (Figure 6b).
    DecodeFirst,
    /// Dedicated prefill and decoding GPUs (Figure 6c); the first
    /// `prefill_gpus` devices only prefill.
    Disaggregated {
        /// Number of prefill-only GPUs.
        prefill_gpus: usize,
    },
}

/// A request in the micro-scenario.
#[derive(Debug, Clone, Copy)]
pub struct MicroReq {
    /// Model index.
    pub model: usize,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Prefill duration, seconds.
    pub prefill_secs: f64,
    /// Output tokens (first produced by prefill).
    pub output_tokens: u32,
}

/// Timing constants of the micro-scenario.
#[derive(Debug, Clone, Copy)]
pub struct MicroCfg {
    /// GPUs available.
    pub gpus: usize,
    /// Model-switch (auto-scaling) cost, seconds.
    pub switch_secs: f64,
    /// Decode step time, seconds (one token for every resident request of
    /// the active model).
    pub decode_step: f64,
    /// TTFT target, seconds.
    pub ttft: f64,
    /// TBT target, seconds.
    pub tbt: f64,
    /// Maximum consecutive time a GPU decodes one model before rotating to
    /// another with pending work (the token-level quota, Algorithm 2).
    pub max_stint: f64,
}

/// Outcome of one policy run.
#[derive(Debug)]
pub struct MicroResult {
    /// Per-request token generation times (seconds).
    pub token_times: Vec<Vec<f64>>,
    /// Token deadlines missed.
    pub violations: usize,
    /// Tokens total.
    pub tokens: usize,
    /// Per-request TTFT.
    pub ttft: Vec<f64>,
    /// Rendered schedule.
    pub trace: TraceLog,
    /// Makespan, seconds.
    pub makespan: f64,
}

#[derive(Debug, Clone)]
struct ReqRun {
    spec: MicroReq,
    prefilled: bool,
    produced: u32,
    gpu: Option<usize>,
    times: Vec<f64>,
}

/// Runs the micro-scenario under `policy`.
///
/// The simulator is a serial per-GPU dispatcher: whenever a GPU is free it
/// picks its next job according to the policy, paying `switch_secs`
/// whenever the job's model differs from the GPU's resident model.
pub fn run_unified(policy: UnifiedPolicy, cfg: &MicroCfg, reqs: &[MicroReq]) -> MicroResult {
    let mut runs: Vec<ReqRun> = reqs
        .iter()
        .map(|&spec| ReqRun {
            spec,
            prefilled: false,
            produced: 0,
            gpu: None,
            times: Vec::new(),
        })
        .collect();
    let mut gpu_time = vec![0.0f64; cfg.gpus];
    let mut gpu_model: Vec<Option<usize>> = vec![None; cfg.gpus];
    let mut gpu_stint = vec![0.0f64; cfg.gpus];
    let mut trace = TraceLog::enabled();
    let prefill_only = match policy {
        UnifiedPolicy::Disaggregated { prefill_gpus } => prefill_gpus,
        _ => 0,
    };

    let may_prefill = |g: usize| match policy {
        UnifiedPolicy::Disaggregated { prefill_gpus } => g < prefill_gpus,
        _ => true,
    };
    let may_decode = |g: usize| g >= prefill_only;

    loop {
        // The GPU with the earliest cursor schedules next.
        let g = (0..cfg.gpus)
            .min_by(|&a, &b| gpu_time[a].partial_cmp(&gpu_time[b]).expect("comparable"))
            .expect("at least one GPU");
        let now = gpu_time[g];
        if now.is_infinite() {
            break; // every GPU is parked: nothing left to run
        }

        let pending_prefill = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.prefilled)
            .min_by(|a, b| {
                a.1.spec
                    .arrival
                    .partial_cmp(&b.1.spec.arrival)
                    .expect("finite")
            })
            .map(|(i, _)| i);
        // A request only becomes decodable once its previous token has
        // actually materialized; `prefilled` is set when the prefill job is
        // *scheduled*, which can be ahead of a lagging decode GPU's clock.
        let token_ready = |r: &ReqRun| r.times.last().is_none_or(|&t| t <= now + 1e-12);
        // Decodable on this GPU: prefilled here, not finished.
        let decodable: Vec<usize> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.prefilled
                    && r.produced < r.spec.output_tokens
                    && r.gpu == Some(g)
                    && token_ready(r)
            })
            .map(|(i, _)| i)
            .collect();
        // For disaggregated decoding GPUs, also adopt prefilled-elsewhere
        // requests without a decode home yet.
        let adoptable: Vec<usize> = if may_decode(g) && prefill_only > 0 {
            runs.iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.prefilled
                        && r.produced < r.spec.output_tokens
                        && r.gpu.is_some_and(|og| og < prefill_only)
                        && token_ready(r)
                })
                .map(|(i, _)| i)
                .collect()
        } else {
            Vec::new()
        };

        enum Job {
            Prefill(usize),
            DecodeBatch(Vec<usize>),
            WaitUntil(f64),
            Done,
        }

        let arrived = |i: usize| runs[i].spec.arrival <= now + 1e-12;
        let job = {
            let prefill_ready = pending_prefill.filter(|&i| arrived(i) && may_prefill(g));
            let prefill_future = pending_prefill.filter(|_| may_prefill(g));
            let mut all_decodable = decodable.clone();
            all_decodable.extend(adoptable.iter().copied());
            let decode_job = || -> Option<Vec<usize>> {
                if !may_decode(g) || all_decodable.is_empty() {
                    return None;
                }
                // Prefer the resident model until its stint quota runs out,
                // then rotate to another decodable model (Algorithm 2's
                // weighted round-robin, reduced to equal quotas).
                let resident = gpu_model[g]
                    .filter(|m| all_decodable.iter().any(|&i| runs[i].spec.model == *m));
                let other = all_decodable
                    .iter()
                    .map(|&i| runs[i].spec.model)
                    .find(|m| Some(*m) != gpu_model[g]);
                let model = match (resident, other) {
                    (Some(r), Some(o)) if gpu_stint[g] >= cfg.max_stint => {
                        let _ = r;
                        o
                    }
                    (Some(r), _) => r,
                    (None, Some(o)) => o,
                    (None, None) => runs[all_decodable[0]].spec.model,
                };
                Some(
                    all_decodable
                        .iter()
                        .copied()
                        .filter(|&i| runs[i].spec.model == model)
                        .collect(),
                )
            };
            match policy {
                UnifiedPolicy::PrefillFirst => {
                    if let Some(i) = prefill_ready {
                        Job::Prefill(i)
                    } else if let Some(b) = decode_job() {
                        Job::DecodeBatch(b)
                    } else if let Some(i) = prefill_future {
                        Job::WaitUntil(runs[i].spec.arrival)
                    } else {
                        Job::Done
                    }
                }
                UnifiedPolicy::DecodeFirst => {
                    if let Some(b) = decode_job() {
                        Job::DecodeBatch(b)
                    } else if let Some(i) = prefill_ready {
                        Job::Prefill(i)
                    } else if let Some(i) = prefill_future {
                        Job::WaitUntil(runs[i].spec.arrival)
                    } else {
                        Job::Done
                    }
                }
                UnifiedPolicy::Disaggregated { .. } => {
                    if may_prefill(g) {
                        if let Some(i) = prefill_ready {
                            Job::Prefill(i)
                        } else if let Some(i) = prefill_future {
                            Job::WaitUntil(runs[i].spec.arrival)
                        } else {
                            Job::Done
                        }
                    } else if let Some(b) = decode_job() {
                        Job::DecodeBatch(b)
                    } else if runs
                        .iter()
                        .any(|r| !r.prefilled || r.produced < r.spec.output_tokens)
                    {
                        // Wait for prefills to hand work over.
                        Job::WaitUntil(now + cfg.decode_step)
                    } else {
                        Job::Done
                    }
                }
            }
        };

        let lane = format!("gpu{g}");
        match job {
            Job::Done => {
                // Park this GPU; the loop ends once every GPU is parked.
                gpu_time[g] = f64::INFINITY;
            }
            Job::WaitUntil(t) => {
                // Nothing runnable: jump forward (strictly).
                gpu_time[g] = t.max(now + 1e-9);
            }
            Job::Prefill(i) => {
                let mut t = now.max(runs[i].spec.arrival);
                if gpu_model[g] != Some(runs[i].spec.model) {
                    trace.record_with(
                        &lane,
                        SimTime::from_secs_f64(t),
                        SimTime::from_secs_f64(t + cfg.switch_secs),
                        TraceKind::Switch,
                        || format!("S{}", runs[i].spec.model),
                    );
                    t += cfg.switch_secs;
                    gpu_model[g] = Some(runs[i].spec.model);
                    gpu_stint[g] = 0.0;
                }
                let end = t + runs[i].spec.prefill_secs;
                trace.record_with(
                    &lane,
                    SimTime::from_secs_f64(t),
                    SimTime::from_secs_f64(end),
                    TraceKind::Prefill,
                    || format!("P{}", runs[i].spec.model),
                );
                runs[i].prefilled = true;
                runs[i].produced = 1;
                runs[i].gpu = Some(g);
                runs[i].times.push(end);
                gpu_time[g] = end;
            }
            Job::DecodeBatch(batch) => {
                let model = runs[batch[0]].spec.model;
                let mut t = now;
                if gpu_model[g] != Some(model) {
                    trace.record_with(
                        &lane,
                        SimTime::from_secs_f64(t),
                        SimTime::from_secs_f64(t + cfg.switch_secs),
                        TraceKind::Switch,
                        || format!("S{model}"),
                    );
                    t += cfg.switch_secs;
                    gpu_model[g] = Some(model);
                    gpu_stint[g] = 0.0;
                }
                let end = t + cfg.decode_step;
                gpu_stint[g] += cfg.decode_step;
                trace.record_with(
                    &lane,
                    SimTime::from_secs_f64(t),
                    SimTime::from_secs_f64(end),
                    TraceKind::Decode,
                    || format!("D{model}"),
                );
                for i in batch {
                    runs[i].gpu = Some(g);
                    runs[i].produced += 1;
                    runs[i].times.push(end);
                }
                gpu_time[g] = end;
            }
        }
    }

    // Score token deadlines (Figure 3 semantics).
    let mut violations = 0usize;
    let mut tokens = 0usize;
    let mut ttft = Vec::new();
    for r in &runs {
        for (i, &t) in r.times.iter().enumerate() {
            tokens += 1;
            let deadline = r.spec.arrival + cfg.ttft + cfg.tbt * i as f64;
            if t > deadline + 1e-9 {
                violations += 1;
            }
        }
        ttft.push(
            r.times
                .first()
                .map(|t| t - r.spec.arrival)
                .unwrap_or(f64::INFINITY),
        );
    }
    // The microbenchmark bypasses the event-driven audit hook, so enforce
    // the auditor's token-order invariant inline before reporting.
    for (i, r) in runs.iter().enumerate() {
        let times: Vec<SimTime> = r.times.iter().map(|&t| SimTime::from_secs_f64(t)).collect();
        if let Some(err) = crate::audit::check_token_order(i, &times) {
            panic!("unified {policy:?} scheduler violated token order: {err}");
        }
    }
    let makespan = runs
        .iter()
        .flat_map(|r| r.times.iter().cloned())
        .fold(0.0, f64::max);
    MicroResult {
        token_times: runs.into_iter().map(|r| r.times).collect(),
        violations,
        tokens,
        ttft,
        trace,
        makespan,
    }
}

/// The Figure 6 exemplar scenario: six requests for three models arriving
/// in pairs on two GPUs.
pub fn figure6_scenario() -> (MicroCfg, Vec<MicroReq>) {
    let cfg = MicroCfg {
        gpus: 2,
        switch_secs: 0.4,
        decode_step: 0.04,
        ttft: 2.5,
        tbt: 0.1,
        max_stint: 1.0,
    };
    let mk = |model, arrival, prefill, out| MicroReq {
        model,
        arrival,
        prefill_secs: prefill,
        output_tokens: out,
    };
    let reqs = vec![
        mk(0, 0.0, 0.4, 120),
        mk(0, 0.0, 0.4, 120),
        mk(1, 1.5, 0.5, 100),
        mk(1, 1.5, 0.5, 100),
        mk(2, 3.0, 0.5, 80),
        mk(2, 3.8, 0.5, 80),
        mk(0, 5.5, 0.4, 60),
    ];
    (cfg, reqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: UnifiedPolicy) -> MicroResult {
        let (cfg, reqs) = figure6_scenario();
        run_unified(policy, &cfg, &reqs)
    }

    #[test]
    fn all_policies_complete_all_tokens() {
        let total: u32 = figure6_scenario().1.iter().map(|r| r.output_tokens).sum();
        for p in [
            UnifiedPolicy::PrefillFirst,
            UnifiedPolicy::DecodeFirst,
            UnifiedPolicy::Disaggregated { prefill_gpus: 1 },
        ] {
            let r = run(p);
            assert_eq!(r.tokens as u32, total, "{p:?}");
            assert!(r.makespan > 0.0 && r.makespan < 60.0, "{p:?}");
        }
    }

    #[test]
    fn disaggregated_has_fewest_violations() {
        // The Figure 6 claim: prefill-first and decoding-first both violate
        // SLOs that disaggregation avoids.
        let pf = run(UnifiedPolicy::PrefillFirst);
        let df = run(UnifiedPolicy::DecodeFirst);
        let dis = run(UnifiedPolicy::Disaggregated { prefill_gpus: 1 });
        assert!(
            dis.violations < pf.violations,
            "disaggregated {} vs prefill-first {}",
            dis.violations,
            pf.violations
        );
        assert!(
            dis.violations < df.violations,
            "disaggregated {} vs decode-first {}",
            dis.violations,
            df.violations
        );
    }

    #[test]
    fn decode_first_hurts_ttft_of_late_arrivals() {
        let df = run(UnifiedPolicy::DecodeFirst);
        let dis = run(UnifiedPolicy::Disaggregated { prefill_gpus: 1 });
        let worst_df = df.ttft.iter().cloned().fold(0.0, f64::max);
        let worst_dis = dis.ttft.iter().cloned().fold(0.0, f64::max);
        assert!(
            worst_df > worst_dis,
            "decode-first worst TTFT {worst_df} vs disaggregated {worst_dis}"
        );
    }

    #[test]
    fn schedules_render() {
        let r = run(UnifiedPolicy::Disaggregated { prefill_gpus: 1 });
        assert!(!r.trace.intervals().is_empty());
        assert_eq!(r.trace.lanes().len(), 2);
    }
}
