//! Aegaeon: token-level multi-model auto-scaling for effective GPU pooling.
//!
//! This crate implements the paper's contribution on top of the simulated
//! substrates:
//!
//! * [`prefill`] — Algorithm 1, the grouped FCFS prefill-phase scheduler;
//! * [`decode`] — Algorithm 2, the batched weighted-round-robin
//!   decoding-phase scheduler, with the quota equations (2)–(3) in
//!   [`quota`];
//! * [`system`] — the serving system itself: disaggregated prefill/decoding
//!   instances over a GPU cluster, the proxy dispatch path, preemptive
//!   auto-scaling with the §5 optimization levels (T0–T3), model
//!   prefetching, and §5.3's fine-grained KV-cache synchronization with
//!   move lists and a reclamation daemon;
//! * [`unified`] — the prefill-first / decoding-first unified schedulers
//!   the paper argues against (Figure 6);
//! * [`planner`] — capacity planning used by the deployment study
//!   (Figure 18, the 1,192 → 213 GPU consolidation).
//!
//! # Examples
//!
//! ```
//! use aegaeon::{AegaeonConfig, ServingSystem};
//! use aegaeon_model::Zoo;
//! use aegaeon_sim::{SimRng, SimTime};
//! use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};
//!
//! let zoo = Zoo::standard();
//! let models = Zoo::replicate(&zoo.market_band(), 8);
//! let mut cfg = AegaeonConfig::small_testbed(2, 2);
//! cfg.seed = 7;
//! let mut rng = SimRng::seed_from_u64(1);
//! let trace = TraceBuilder::new(SimTime::from_secs_f64(60.0), LengthDist::sharegpt())
//!     .uniform_models(&mut rng, models.len() as u32, 0.05)
//!     .build(&mut rng);
//! let result = ServingSystem::run(&cfg, &models, &trace);
//! let report = result.attainment(SloSpec::paper_default());
//! assert!(report.ratio() > 0.5);
//! ```

pub mod audit;
pub mod chaos;
pub mod config;
pub mod decode;
pub mod deploy;
pub mod events;
pub mod planner;
pub mod prefill;
pub mod proxy;
pub mod quota;
pub mod reqstate;
pub mod result;
pub mod session;
pub mod sessionbook;
pub mod shard;
pub mod system;
pub mod unified;

pub use audit::{AuditReport, AuditView, Auditor, InvariantAuditor, ReqAudit, Violation};
pub use chaos::{FaultEvent, FaultKind, FaultPlan};
pub use config::AegaeonConfig;
pub use events::TokenEv;
pub use proxy::{Admission, AdmissionPolicy};
pub use quota::{decode_quotas, QuotaInputs};
pub use result::RunResult;
pub use session::{Endpoint, LiveRequest, ServingSession};
pub use sessionbook::{SessEntry, SessPlace, SessionBook};
pub use shard::{run_sharded, run_sharded_audited, Handoff, ShardPlan};
pub use system::ServingSystem;
