//! Per-model deployment state: latency models and size data.

use aegaeon_engine::{fit_model, FittedModel, PerfModel};
use aegaeon_gpu::GpuSpec;
use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::SimRng;

/// A model as deployed: its spec plus ground-truth and fitted latency
/// models for the cluster's GPU type.
#[derive(Debug, Clone)]
pub struct ModelDeploy {
    /// The architecture (with the deployment's TP degree).
    pub spec: ModelSpec,
    /// Ground-truth latency (drives execution).
    pub perf: PerfModel,
    /// Appendix A.2 estimator (drives scheduling decisions).
    pub fitted: FittedModel,
    /// Weight bytes per GPU shard.
    pub shard_bytes: u64,
    /// KV bytes per token per GPU shard.
    pub kv_token_bytes: u64,
}

impl ModelDeploy {
    /// Profiles and fits a model for `gpu` at TP degree `tp`.
    pub fn new(spec: &ModelSpec, gpu: &GpuSpec, tp: u32, rng: &mut SimRng) -> ModelDeploy {
        let spec = spec.with_tp(tp);
        let perf = PerfModel::new(gpu, &spec);
        let fitted = fit_model(&perf, &spec, rng);
        ModelDeploy {
            shard_bytes: spec.weight_bytes_per_gpu(),
            kv_token_bytes: spec.kv_bytes_per_token_per_gpu(),
            perf,
            fitted,
            spec,
        }
    }

    /// Eq. (4) switch-time estimate, seconds.
    pub fn est_switch_secs(&self, pcie_bw: f64, beta: f64) -> f64 {
        aegaeon_engine::analytical::estimate_switch_secs(self.shard_bytes, pcie_bw, beta)
    }
}

/// Builds the deployment table for a model list.
pub fn build_deploys(
    models: &[ModelSpec],
    gpu: &GpuSpec,
    tp: u32,
    rng: &mut SimRng,
) -> Vec<ModelDeploy> {
    models
        .iter()
        .map(|m| ModelDeploy::new(m, gpu, tp, rng))
        .collect()
}

/// Convenience: the id of the `i`-th deployed model.
pub fn model_id(i: usize) -> ModelId {
    ModelId(i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::Zoo;

    #[test]
    fn deploy_builds_consistent_sizes() {
        let zoo = Zoo::standard();
        let mut rng = SimRng::seed_from_u64(1);
        let d = ModelDeploy::new(zoo.get("LLaMA-13B").unwrap(), &GpuSpec::h800(), 2, &mut rng);
        assert_eq!(d.spec.tp, 2);
        assert_eq!(
            d.shard_bytes,
            zoo.get("LLaMA-13B").unwrap().weight_bytes() / 2
        );
        assert_eq!(d.kv_token_bytes, 800 * 1024 / 2);
        assert!(d.fitted.r2_decode > 0.9);
    }

    #[test]
    fn switch_estimate_scales_with_size() {
        let zoo = Zoo::standard();
        let mut rng = SimRng::seed_from_u64(1);
        let small = ModelDeploy::new(zoo.get("Yi-6B").unwrap(), &GpuSpec::h800(), 1, &mut rng);
        let big = ModelDeploy::new(zoo.get("Qwen-14B").unwrap(), &GpuSpec::h800(), 1, &mut rng);
        assert!(big.est_switch_secs(32e9, 1.25) > small.est_switch_secs(32e9, 1.25));
    }
}
