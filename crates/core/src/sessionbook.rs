//! Retained-KV bookkeeping for agentic sessions.
//!
//! When session affinity is on, a finished turn's KV is not freed: it is
//! re-labeled under the session's reserved handle (bit 63 of the
//! [`RequestId`] space, which real trace ids never reach) and stays in
//! whichever [`aegaeon_engine::KvCache`] held it — on the decoding GPU when
//! the unified cache has headroom, spilled into the node's CPU cache
//! otherwise. The [`SessionBook`] maps each session to that retained
//! prefix; the next turn *claims* it at prefill routing time and absorbs it
//! into its own KV entry, prefilling only the fresh delta.
//!
//! Invariant: per session, at most one of {book entry, outstanding claim}
//! exists at any instant — an entry is removed the moment a turn claims it,
//! and a new entry may only be inserted once no claim is outstanding. This
//! is what keeps the reserved handle unique across every cache and lets the
//! KV double-entry audit treat retained prefixes as ordinary holdings.

use std::collections::BTreeMap;

use aegaeon_model::ModelId;
use aegaeon_sim::SimTime;
use aegaeon_workload::{RequestId, SessionId};

/// Where a session's retained KV prefix lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessPlace {
    /// Resident in decoding instance `di`'s unified GPU cache.
    DecodeGpu(u32),
    /// Spilled into node `node`'s unified CPU cache.
    Cpu(u32),
}

/// One retained session prefix.
#[derive(Debug, Clone, Copy)]
pub struct SessEntry {
    /// The session's (single) model; a claim requires an exact match.
    pub model: ModelId,
    /// Tokens of conversation KV retained under the handle.
    pub tokens: u32,
    /// Which cache holds the handle's blocks.
    pub place: SessPlace,
    /// When the turn that produced this prefix retired (TTL base).
    pub retained_at: SimTime,
    /// Event guarding an in-flight GPU→CPU spill copy; the entry is not
    /// claimable until the copy lands (the CPU blocks are still filling).
    pub guard: Option<aegaeon_gpu::EventId>,
}

/// Session → retained prefix map, plus outstanding claims.
#[derive(Debug, Default)]
pub struct SessionBook {
    entries: BTreeMap<u64, SessEntry>,
    /// Sessions whose retained prefix has been claimed by an in-flight
    /// turn (entry removed; handle still live in some cache until the
    /// claimant absorbs or abandons it).
    claims: BTreeMap<u64, RequestId>,
}

impl SessionBook {
    /// An empty book.
    pub fn new() -> SessionBook {
        SessionBook::default()
    }

    /// The reserved [`RequestId`] a session's retained KV is keyed under.
    pub fn handle(s: SessionId) -> RequestId {
        RequestId(1u64 << 63 | s.0)
    }

    /// True if `id` is a session handle rather than a real request id.
    pub fn is_handle(id: RequestId) -> bool {
        id.0 & (1u64 << 63) != 0
    }

    /// The session a handle belongs to.
    pub fn session_of(id: RequestId) -> SessionId {
        SessionId(id.0 & !(1u64 << 63))
    }

    /// Retained entry for a session, if any.
    pub fn get(&self, s: SessionId) -> Option<&SessEntry> {
        self.entries.get(&s.0)
    }

    /// Inserts a retained entry (the caller must have freed/claimed any
    /// predecessor; see the module invariant).
    pub fn insert(&mut self, s: SessionId, e: SessEntry) {
        debug_assert!(
            !self.claims.contains_key(&s.0),
            "retaining {s} while a claim is outstanding"
        );
        self.entries.insert(s.0, e);
    }

    /// Removes and returns a session's entry.
    pub fn remove(&mut self, s: SessionId) -> Option<SessEntry> {
        self.entries.remove(&s.0)
    }

    /// Marks a session's prefix as claimed by `req` (after [`Self::remove`]).
    pub fn claim(&mut self, s: SessionId, req: RequestId) {
        self.claims.insert(s.0, req);
    }

    /// Clears an outstanding claim (absorbed or abandoned).
    pub fn clear_claim(&mut self, s: SessionId) {
        self.claims.remove(&s.0);
    }

    /// True while some in-flight turn holds this session's prefix.
    pub fn is_claimed(&self, s: SessionId) -> bool {
        self.claims.contains_key(&s.0)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in deterministic (session-id) order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &SessEntry)> {
        self.entries.iter().map(|(&k, e)| (SessionId(k), e))
    }

    /// Outstanding claims in deterministic order.
    pub fn claims(&self) -> impl Iterator<Item = (SessionId, RequestId)> + '_ {
        self.claims.iter().map(|(&k, &r)| (SessionId(k), r))
    }

    /// Removes every entry stored at `place` (instance death) and returns
    /// them; the KV itself died with the holder, so nothing is freed here.
    pub fn drain_place(&mut self, place: SessPlace) -> Vec<(SessionId, SessEntry)> {
        let gone: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.place == place)
            .map(|(&k, _)| k)
            .collect();
        gone.into_iter()
            .map(|k| (SessionId(k), self.entries.remove(&k).expect("just listed")))
            .collect()
    }

    /// Sessions idle past `ttl` at `now`, in deterministic order.
    pub fn expired(&self, now: SimTime, ttl: aegaeon_sim::SimDur) -> Vec<SessionId> {
        self.entries
            .iter()
            .filter(|(_, e)| now.saturating_since(e.retained_at) > ttl)
            .map(|(&k, _)| SessionId(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_sim::SimDur;

    fn entry(place: SessPlace, at: f64) -> SessEntry {
        SessEntry {
            model: ModelId(0),
            tokens: 100,
            place,
            retained_at: SimTime::from_secs_f64(at),
            guard: None,
        }
    }

    #[test]
    fn handles_are_disjoint_from_trace_ids() {
        let h = SessionBook::handle(SessionId(42));
        assert!(SessionBook::is_handle(h));
        assert!(!SessionBook::is_handle(RequestId(42)));
        assert_eq!(SessionBook::session_of(h), SessionId(42));
    }

    #[test]
    fn claim_lifecycle() {
        let mut b = SessionBook::new();
        let s = SessionId(3);
        b.insert(s, entry(SessPlace::DecodeGpu(1), 0.0));
        let e = b.remove(s).unwrap();
        assert_eq!(e.place, SessPlace::DecodeGpu(1));
        b.claim(s, RequestId(9));
        assert!(b.is_claimed(s));
        assert!(b.get(s).is_none());
        b.clear_claim(s);
        assert!(!b.is_claimed(s));
    }

    #[test]
    fn drain_place_and_expiry() {
        let mut b = SessionBook::new();
        b.insert(SessionId(1), entry(SessPlace::DecodeGpu(0), 0.0));
        b.insert(SessionId(2), entry(SessPlace::Cpu(0), 5.0));
        b.insert(SessionId(3), entry(SessPlace::DecodeGpu(0), 9.0));
        let gone = b.drain_place(SessPlace::DecodeGpu(0));
        assert_eq!(
            gone.iter().map(|(s, _)| s.0).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(b.len(), 1);
        let ex = b.expired(SimTime::from_secs_f64(20.0), SimDur::from_secs(10));
        assert_eq!(ex, vec![SessionId(2)]);
        assert!(b
            .expired(SimTime::from_secs_f64(10.0), SimDur::from_secs(10))
            .is_empty());
    }
}
