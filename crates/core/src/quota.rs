//! The decoding-phase quota equations (§4.3, Equations (2) and (3)).
//!
//! Each round, batch `i` receives a time quota
//!
//! ```text
//! q_i = c / (n_i · (α − Σ_k 1/n_k))                         (2)
//! α   = max( c / (min_k n_k · QMAX) + Σ_k 1/n_k , 0.5 )     (3)
//! ```
//!
//! where `n_k = d / t_k` (tokens a batch may decode per deadline period),
//! `c` is the summed auto-scaling overhead of the models in the work list
//! and `QMAX` caps individual quotas. Executing batch `i` for `q_i` seconds
//! yields an SLO attainment of `min(1, 1/α)` for the round (see the §4.3
//! worked example, reproduced as a test below).

/// Inputs to the quota computation for one round.
#[derive(Debug, Clone)]
pub struct QuotaInputs {
    /// Per-batch estimated decode-step time `t_k`, seconds.
    pub step_times: Vec<f64>,
    /// Target TBT `d`, seconds.
    pub tbt: f64,
    /// Summed auto-scaling overhead `c` for the models in the list, seconds.
    pub switch_total: f64,
    /// Quota cap `QMAX`, seconds.
    pub qmax: f64,
}

/// The computed round schedule.
#[derive(Debug, Clone)]
pub struct RoundQuotas {
    /// Per-batch quotas `q_i`, seconds.
    pub quotas: Vec<f64>,
    /// The α of Equation (3).
    pub alpha: f64,
    /// Estimated SLO attainment of the round, `min(1, 1/α)`.
    pub est_attainment: f64,
}

/// Evaluates Equations (2) and (3).
///
/// Degenerate cases: an empty work list yields no quotas; `c = 0` (a single
/// resident model, nothing to switch) yields `q_i = QMAX` — decode freely
/// and re-evaluate next round.
///
/// # Panics
///
/// Panics if any step time, the TBT or QMAX is not strictly positive.
pub fn decode_quotas(inp: &QuotaInputs) -> RoundQuotas {
    assert!(
        inp.tbt > 0.0 && inp.qmax > 0.0,
        "d and QMAX must be positive"
    );
    if inp.step_times.is_empty() {
        return RoundQuotas {
            quotas: Vec::new(),
            alpha: 0.5,
            est_attainment: 1.0,
        };
    }
    let n: Vec<f64> = inp
        .step_times
        .iter()
        .map(|&t| {
            assert!(t > 0.0, "step time must be positive");
            // A batch slower than its deadline can never meet TBT alone;
            // floor n at 1 to keep the algebra sane (quota still assigned).
            (inp.tbt / t).max(1.0)
        })
        .collect();
    let inv_sum: f64 = n.iter().map(|x| 1.0 / x).sum();
    let n_min = n.iter().cloned().fold(f64::INFINITY, f64::min);
    let c = inp.switch_total.max(0.0);
    if c == 0.0 {
        // No switching pressure: Equation (2) degenerates (0/0); decode at
        // the cap.
        return RoundQuotas {
            quotas: vec![inp.qmax; n.len()],
            alpha: inv_sum.max(0.5),
            est_attainment: (1.0 / inv_sum.max(0.5)).min(1.0),
        };
    }
    let alpha = (c / (n_min * inp.qmax) + inv_sum).max(0.5);
    let denom = alpha - inv_sum;
    let quotas: Vec<f64> = n
        .iter()
        .map(|&ni| {
            if denom <= 1e-12 {
                inp.qmax
            } else {
                (c / (ni * denom)).min(inp.qmax * 4.0)
            }
        })
        .collect();
    RoundQuotas {
        quotas,
        alpha,
        est_attainment: (1.0 / alpha).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §4.3: three batches, d = 0.1, t_i = 0.025, c = 3, QMAX = 3
        // ⇒ n_i = 4, α = 1/4 + 3/4 = 1, q_i = 3 / (4 · (1 − 3/4)) = 3.
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![0.025; 3],
            tbt: 0.1,
            switch_total: 3.0,
            qmax: 3.0,
        });
        assert!((r.alpha - 1.0).abs() < 1e-9, "alpha {}", r.alpha);
        for q in &r.quotas {
            assert!((q - 3.0).abs() < 1e-9, "q {q}");
        }
        assert!((r.est_attainment - 1.0).abs() < 1e-9);
    }

    #[test]
    fn light_switching_hits_the_alpha_floor() {
        // Small c: α floors at 0.5, quotas stay small and flexible.
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![0.02, 0.02],
            tbt: 0.1,
            switch_total: 0.2,
            qmax: 4.0,
        });
        assert!((r.alpha - 0.5).abs() < 1e-9);
        // q = 0.2 / (5 · (0.5 − 0.4)) = 0.4.
        for q in &r.quotas {
            assert!((q - 0.4).abs() < 1e-9, "q {q}");
        }
        assert_eq!(r.est_attainment, 1.0);
    }

    #[test]
    fn overload_degrades_estimated_attainment() {
        // Many slow batches: α > 1 and estimated attainment < 1.
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![0.05; 6],
            tbt: 0.1,
            switch_total: 6.0,
            qmax: 4.0,
        });
        assert!(r.alpha > 1.0);
        assert!(r.est_attainment < 1.0);
        assert!(r.quotas.iter().all(|&q| q > 0.0));
    }

    #[test]
    fn single_resident_model_decodes_at_cap() {
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![0.03],
            tbt: 0.1,
            switch_total: 0.0,
            qmax: 4.0,
        });
        assert_eq!(r.quotas, vec![4.0]);
        assert_eq!(r.est_attainment, 1.0);
    }

    #[test]
    fn empty_list_is_trivial() {
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![],
            tbt: 0.1,
            switch_total: 1.0,
            qmax: 4.0,
        });
        assert!(r.quotas.is_empty());
    }

    #[test]
    fn slower_batches_get_larger_quotas() {
        // Equation (2): q_i ∝ 1/n_i = t_i/d — a batch with slower steps
        // needs more wall time per buffered token.
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![0.02, 0.04],
            tbt: 0.1,
            switch_total: 2.0,
            qmax: 8.0,
        });
        assert!(r.quotas[1] > r.quotas[0]);
        let ratio = r.quotas[1] / r.quotas[0];
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn step_time_beyond_deadline_is_floored() {
        // t > d would make n < 1; the floor keeps quotas finite/positive.
        let r = decode_quotas(&QuotaInputs {
            step_times: vec![0.2],
            tbt: 0.1,
            switch_total: 1.0,
            qmax: 4.0,
        });
        assert!(r.quotas[0] > 0.0 && r.quotas[0].is_finite());
    }
}
