//! Burst absorption: a hot model whose traffic bursts past its provisioned
//! share (Figure 1b), pooled with a sporadic tail of cold models.
//!
//! ```text
//! cargo run --release -p aegaeon-bench --example burst_absorption
//! ```

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_metrics::slo::attainment_per_model;
use aegaeon_model::{ModelId, Zoo};
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{BurstProcess, LengthDist, SloSpec, TraceBuilder};

fn main() {
    let zoo = Zoo::standard();
    let n_cold = 11usize;
    let models = Zoo::replicate(&zoo.market_band(), n_cold + 1);

    // Model 0 is hot and bursty; the rest are a sporadic tail.
    let burst = BurstProcess {
        base_rate: 0.6,
        burst_rate: 3.0,
        mean_quiet: 60.0,
        mean_burst: 15.0,
    };
    let mut rng = SimRng::seed_from_u64(33);
    let horizon = SimTime::from_secs_f64(400.0);
    let mut tb = TraceBuilder::new(horizon, LengthDist::sharegpt())
        .bursty_model(&mut rng, ModelId(0), burst);
    for m in 1..=n_cold {
        tb = tb.poisson_model(&mut rng, ModelId(m as u32), 0.05);
    }
    let trace = tb.build(&mut rng);
    println!(
        "workload: hot model averaging {:.2} req/s with {:.1}x bursts + {} cold models at 0.05 req/s",
        burst.mean_rate(),
        burst.burst_rate / burst.base_rate,
        n_cold
    );
    println!("total: {} requests over {:.0} s", trace.len(), horizon.as_secs_f64());

    let mut cfg = AegaeonConfig::small_testbed(2, 4);
    cfg.seed = 33;
    let r = ServingSystem::run(&cfg, &models, &trace);
    let slo = SloSpec::paper_default();
    let per_model = attainment_per_model(&r.outcomes, slo, trace.horizon, models.len());
    let overall = r.attainment(slo);

    println!("\npooled on 6 GPUs (2 prefill + 4 decoding):");
    println!("  overall attainment {:.1}%", overall.percent());
    println!(
        "  hot model          {:.1}% across {} requests",
        per_model[0].percent(),
        per_model[0].requests
    );
    let tail_ratio: f64 = per_model[1..]
        .iter()
        .map(|a| a.ratio())
        .sum::<f64>()
        / n_cold as f64;
    println!("  cold tail (mean)   {:.1}%", tail_ratio * 100.0);
    println!(
        "  switches {}, prefetch hits {:.0}%, GPU util {:.1}%",
        r.scale_count,
        r.prefetch_hit_ratio() * 100.0,
        r.mean_gpu_utilization() * 100.0
    );
    println!(
        "\nthe burst borrows decoding turns from the idle tail's share instead of\n\
         needing reserved burst capacity — the pooling win of §2.2."
    );
}
