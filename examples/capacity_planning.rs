//! Capacity planning walk-through: how many GPUs does a model mix need,
//! dedicated versus pooled? (The §7.5 deployment calculation.)
//!
//! ```text
//! cargo run --release -p aegaeon-bench --example capacity_planning
//! ```

use aegaeon::planner::{
    aegaeon_pool_gpus, dedicated_gpus, instance_capacity_rps, ModelDemand, PlannerConfig,
};
use aegaeon_gpu::GpuSpec;
use aegaeon_model::Zoo;

fn main() {
    let zoo = Zoo::standard();
    let gpu = GpuSpec::h20();
    let cfg = PlannerConfig::production_default();

    // A small marketplace: a dozen 6–14B models with sporadic demand.
    let bases = ["Yi-6B", "Qwen-7B", "InternLM2.5-7B", "Qwen-14B"];
    let demands: Vec<ModelDemand> = (0..12)
        .map(|i| ModelDemand {
            spec: zoo.get(bases[i % bases.len()]).expect("zoo").clone(),
            rate: [0.02, 0.05, 0.12, 0.30][i % 4],
            mean_output: 250.0,
            mean_input: 330.0,
        })
        .collect();

    println!("demand profile on {}:", gpu.name);
    for d in &demands {
        println!(
            "  {:16} {:>5.2} req/s (one dedicated instance sustains {:>5.2} req/s)",
            d.spec.name,
            d.rate,
            instance_capacity_rps(&gpu, d, cfg.batch)
        );
    }
    let agg: f64 = demands.iter().map(|d| d.rate).sum();
    println!("  aggregate: {agg:.2} req/s across {} models", demands.len());

    let before = dedicated_gpus(&gpu, &demands, &cfg);
    let after = aegaeon_pool_gpus(&gpu, &demands, &cfg);
    println!("\ndedicated (peak x{}, {}x redundancy): {before} GPUs", cfg.peak_factor, cfg.redundancy);
    println!("Aegaeon pool (same redundancy):        {after} GPUs");
    println!(
        "saving: {:.0}%  —  {:.1} models per pooled GPU",
        (1.0 - after as f64 / before as f64) * 100.0,
        demands.len() as f64 / after as f64
    );
    println!(
        "\nthe pool is sized by two constraints: aggregate token throughput and\n\
         the active-model floor E[m] = sum(1 - exp(-lambda*T)) (Theorem 3.1),\n\
         at ~{} concurrently active models per instance (§7.2).",
        cfg.active_models_per_instance
    );
}
