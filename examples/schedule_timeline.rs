//! Renders a live token-level schedule as an ASCII timeline (the Figure 2
//! intuition, on the real system): prefill (P), decoding turns (D) and
//! preemptive auto-scaling (S) interleaving on each GPU.
//!
//! ```text
//! cargo run --release -p aegaeon-bench --example schedule_timeline
//! ```
//!
//! Pass `--trace-out FILE.json` to also export the run as a Chrome Trace
//! Event Format file with full request-lifecycle spans and metric series
//! (open in Perfetto / `chrome://tracing`).

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_metrics::report::render_timeline;
use aegaeon_model::Zoo;
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

fn main() {
    let mut trace_out: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace-out" => {
                trace_out = Some(it.next().expect("--trace-out FILE.json").clone());
            }
            other => {
                eprintln!("usage: schedule_timeline [--trace-out FILE.json] (got {other})");
                std::process::exit(2);
            }
        }
    }
    let zoo = Zoo::standard();
    let models = Zoo::replicate(&zoo.market_band(), 5);
    let mut rng = SimRng::seed_from_u64(5);
    let trace = TraceBuilder::new(SimTime::from_secs_f64(60.0), LengthDist::sharegpt())
        .uniform_models(&mut rng, 5, 0.15)
        .build(&mut rng);

    let mut cfg = AegaeonConfig::small_testbed(1, 2);
    cfg.seed = 5;
    cfg.trace_schedule = true;
    if trace_out.is_some() {
        cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
    }
    let r = ServingSystem::run(&cfg, &models, &trace);

    println!(
        "5 models / 3 GPUs / {} requests; attainment {:.1}%\n",
        trace.len(),
        r.attainment(SloSpec::paper_default()).percent()
    );
    println!("first 30 s (gpu0 = prefill instance, gpu1-2 = decoding):");
    print!(
        "{}",
        render_timeline(
            &r.schedule,
            SimTime::ZERO,
            SimTime::from_secs_f64(30.0),
            110
        )
    );
    println!("\nP prefill | D decoding turn | S preemptive auto-scaling");
    println!(
        "{} switches across the window; each decoding lane rotates its models'\n\
         batches per Algorithm 2 while prefills stream through gpu0 (Algorithm 1).",
        r.scale_count
    );
    if let Some(path) = trace_out {
        let json =
            aegaeon_telemetry::chrome_trace(&r.schedule, &r.telemetry.spans, &r.telemetry.metrics);
        std::fs::write(&path, json).expect("write trace file");
        println!("\nwrote {path} (open in Perfetto / chrome://tracing)");
    }
}
