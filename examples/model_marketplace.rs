//! A model-marketplace scenario: many models with heavily skewed
//! popularity (Figure 1a's power law), served by one Aegaeon pool versus
//! request-level auto-scaling on the same hardware.
//!
//! ```text
//! cargo run --release -p aegaeon-bench --example model_marketplace
//! ```

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::{ServerlessLlm, SllmConfig};
use aegaeon_model::Zoo;
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::popularity::{head_share, zipf_weights};
use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

fn main() {
    let n_models = 48usize;
    let zoo = Zoo::standard();
    let models = Zoo::replicate(&zoo.market_band(), n_models);

    // Popularity skew: a handful of hot models, a long sporadic tail.
    let weights = zipf_weights(n_models, 1.1);
    println!(
        "marketplace: {n_models} models, top 10% of models receive {:.0}% of requests",
        head_share(&weights, 0.10) * 100.0
    );

    let mut rng = SimRng::seed_from_u64(21);
    let trace = TraceBuilder::new(SimTime::from_secs_f64(400.0), LengthDist::sharegpt())
        .weighted_models(&mut rng, &weights, 7.0)
        .build(&mut rng);
    let counts = trace.per_model_counts(n_models);
    println!(
        "workload: {} requests; hottest model {} req, coldest {} req",
        trace.len(),
        counts.iter().max().expect("models"),
        counts.iter().min().expect("models"),
    );

    let slo = SloSpec::paper_default();
    let cfg = AegaeonConfig::paper_testbed();
    let aeg = ServingSystem::run(&cfg, &models, &trace);
    let aeg_rep = aeg.attainment(slo);

    let sllm_cfg = SllmConfig::new(cfg.cluster.clone());
    let sllm = ServerlessLlm::run(&sllm_cfg, &models, &trace);
    let sllm_rep = sllm.attainment(slo);

    println!("\non the paper's 16-GPU testbed:");
    println!(
        "  Aegaeon        {:>6.1}% attainment, {:>5} switches, util {:.1}%",
        aeg_rep.percent(),
        aeg.scale_count,
        aeg.mean_gpu_utilization() * 100.0
    );
    println!(
        "  ServerlessLLM  {:>6.1}% attainment, {:>5} switches, util {:.1}%",
        sllm_rep.percent(),
        sllm.switches,
        sllm.mean_gpu_utilization() * 100.0
    );
    println!(
        "\ntoken-level pooling keeps the sporadic tail alive while the hot head\n\
         stays batched; request-level scaling makes the tail wait whole requests."
    );
}
