//! Quickstart: pool eight models onto four GPUs and check SLO attainment.
//!
//! ```text
//! cargo run --release -p aegaeon-bench --example quickstart
//! ```

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_model::Zoo;
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

fn main() {
    // 1. Pick the models to serve: eight distinct 6–14B market models.
    let zoo = Zoo::standard();
    let models = Zoo::replicate(&zoo.market_band(), 8);
    println!("serving {} models:", models.len());
    for m in &models {
        println!(
            "  {:18} {:5.1} GB weights, {:4} KB KV/token",
            m.name,
            m.weight_bytes() as f64 / 1e9,
            m.kv_bytes_per_token() / 1024
        );
    }

    // 2. Synthesize a sporadic multi-model workload (Poisson per model).
    let mut rng = SimRng::seed_from_u64(7);
    let trace = TraceBuilder::new(SimTime::from_secs_f64(300.0), LengthDist::sharegpt())
        .uniform_models(&mut rng, models.len() as u32, 0.08)
        .build(&mut rng);
    println!(
        "\nworkload: {} requests over {:.0} s (aggregate {:.2} req/s)",
        trace.len(),
        trace.horizon.as_secs_f64(),
        trace.aggregate_rate()
    );

    // 3. Configure a small pool: 1 prefill + 3 decoding H800 instances.
    let mut cfg = AegaeonConfig::small_testbed(1, 3);
    cfg.seed = 7;

    // 4. Serve and report.
    let result = ServingSystem::run(&cfg, &models, &trace);
    let slo = SloSpec::paper_default();
    let report = result.attainment(slo);
    println!("\nresults:");
    println!("  completed        {}/{}", result.completed, result.total_requests);
    println!("  SLO attainment   {:.1}% (TTFT 10 s, TBT 100 ms)", report.percent());
    println!("  mean TTFT        {:.2} s", report.ttft.mean());
    println!("  model switches   {} (prefetch hits {:.0}%)",
        result.scale_count, result.prefetch_hit_ratio() * 100.0);
    println!("  KV swaps         {}", result.swaps);
    println!(
        "  GPU utilization  {:.1}% across {} GPUs (vs ~{:.1}% if dedicated)",
        result.mean_gpu_utilization() * 100.0,
        result.gpu_busy.len(),
        result.mean_gpu_utilization() * 100.0 * result.gpu_busy.len() as f64
            / models.len() as f64
    );
    println!(
        "\n{} models on {} GPUs — {:.1} models per GPU.",
        models.len(),
        result.gpu_busy.len(),
        models.len() as f64 / result.gpu_busy.len() as f64
    );
}
