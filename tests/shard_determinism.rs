//! Differential determinism tests for sharded conservative-parallel runs.
//!
//! The sharded engine's contract is that worker-thread count is
//! unobservable: `run_sharded(cfg, models, trace, shards, 1)` and
//! `run_sharded(cfg, models, trace, shards, N)` must produce bit-identical
//! [`RunResult::fingerprint`]s, with or without chaos, because every
//! order-sensitive step (window boundaries, handoff delivery, merging)
//! happens on the coordinator in fixed shard order. These tests exercise
//! that contract across seeds, configs, and fault plans, and force the
//! cross-shard migration path by killing entire tiers.

use aegaeon::chaos::FaultPlan;
use aegaeon::events::InstKind;
use aegaeon::shard::{run_sharded, run_sharded_audited, ShardPlan};
use aegaeon::AegaeonConfig;
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
use aegaeon_workload::LengthDist;

const SEEDS: [u64; 3] = [3, 1717, 900_001];

/// The paper testbed: 2 nodes x 8 H800, splittable into 2 shards.
fn two_node_cfg() -> AegaeonConfig {
    let mut cfg = AegaeonConfig::paper_testbed();
    cfg.audit = true;
    cfg
}

/// A 4-node cluster of 4-GPU nodes, splittable into 4 shards.
fn four_node_cfg() -> AegaeonConfig {
    let mut cfg = AegaeonConfig::paper_testbed();
    cfg.cluster = ClusterSpec::homogeneous(
        4,
        NodeSpec {
            gpus: 4,
            gpu: GpuSpec::h800(),
            dram_bytes: 1 << 40,
            nic_bw: 25e9,
        },
    );
    cfg.prefill_instances = 6;
    cfg.audit = true;
    cfg
}

fn chaotic_plan() -> FaultPlan {
    FaultPlan {
        seed: 11,
        crashes: vec![(40.0, InstKind::Decode, 1)],
        link_rate: 0.04,
        link_factor: 0.3,
        link_secs: 4.0,
        stage_oom_rate: 0.03,
        stage_oom_secs: 5.0,
        stall_rate: 0.02,
        stall_secs: 1.0,
        ..FaultPlan::none()
    }
}

/// Seeds x configs x {healthy, chaotic}: a 4-thread sharded run reproduces
/// the 1-thread sharded run bit for bit, under audit.
#[test]
fn sharded_fingerprint_is_thread_invariant() {
    let configs: [(AegaeonConfig, usize); 2] = [(two_node_cfg(), 2), (four_node_cfg(), 4)];
    for (base, shards) in &configs {
        for plan in [FaultPlan::none(), chaotic_plan()] {
            for seed in SEEDS {
                let mut cfg = base.clone();
                cfg.seed = seed;
                cfg.faults = plan.clone();
                let models = market_models(16);
                let trace = uniform_trace(16, 0.12, 120.0, seed, LengthDist::sharegpt());
                let serial = run_sharded(&cfg, &models, &trace, *shards, 1);
                let parallel = run_sharded(&cfg, &models, &trace, *shards, 4);
                assert_eq!(
                    serial.fingerprint(),
                    parallel.fingerprint(),
                    "seed={seed} shards={shards} plan=\"{plan}\": \
                     thread count leaked into the result"
                );
                assert!(serial.completed > 0, "seed={seed}: trace actually ran");
                assert_eq!(serial.completed, serial.total_requests);
            }
        }
    }
}

/// Killing every prefill instance of shard 0 forces its requests across
/// the shard boundary; they must all still complete, the audit (request
/// conservation including migrations, causality, token order) must stay
/// clean, and the migration path must stay thread-invariant.
#[test]
fn total_prefill_loss_migrates_across_shards_and_completes() {
    let mut cfg = four_node_cfg();
    cfg.seed = 42;
    // Learn shard 0's prefill tier size from the partition itself, then
    // schedule explicit crashes for all of it. Global prefill indexes are
    // the concatenation of per-shard prefill tiers, so shard 0's are
    // 0..count.
    let models = market_models(16);
    let trace = uniform_trace(16, 0.1, 120.0, 42, LengthDist::sharegpt());
    let probe = ShardPlan::partition(&cfg, &trace, 4);
    let shard0_prefills = probe.cfgs[0].prefill_instances;
    assert!(shard0_prefills >= 1);
    cfg.faults = FaultPlan::crashes(
        &(0..shard0_prefills)
            .map(|i| (30.0, InstKind::Prefill, i as u32))
            .collect::<Vec<_>>(),
    );

    let (a, report) = run_sharded_audited(&cfg, &models, &trace, 4, 2);
    assert!(report.ok(), "audit failed:\n{report}");
    assert_eq!(
        a.completed, a.total_requests,
        "every request must complete despite losing a whole prefill tier \
         (pre-sharding this was a fatal routing condition)"
    );
    let b = run_sharded(&cfg, &models, &trace, 4, 1);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// Same for a total decoding-tier loss: prefilled requests stranded without
/// any live decoder migrate out and finish elsewhere.
#[test]
fn total_decode_loss_migrates_across_shards_and_completes() {
    let mut cfg = four_node_cfg();
    cfg.seed = 43;
    let models = market_models(16);
    let trace = uniform_trace(16, 0.1, 120.0, 43, LengthDist::sharegpt());
    let probe = ShardPlan::partition(&cfg, &trace, 4);
    let shard0_decodes = probe.cfgs[0].instance_count() - probe.cfgs[0].prefill_instances;
    cfg.faults = FaultPlan::crashes(
        &(0..shard0_decodes)
            .map(|i| (30.0, InstKind::Decode, i as u32))
            .collect::<Vec<_>>(),
    );

    let (a, report) = run_sharded_audited(&cfg, &models, &trace, 4, 3);
    assert!(report.ok(), "audit failed:\n{report}");
    assert_eq!(a.completed, a.total_requests);
    let b = run_sharded(&cfg, &models, &trace, 4, 1);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Across random workloads and seeds, boundary-event exchange never
        /// violates the auditor's causality check (no event is delivered
        /// into a shard's processed past) and the fingerprint stays
        /// invariant under worker-thread count.
        #[test]
        fn boundary_exchange_preserves_causality(
            seed in 0u64..1_000_000,
            n_models in 4usize..12,
            rate in 0.04f64..0.15,
        ) {
            let mut cfg = two_node_cfg();
            cfg.seed = seed;
            // Stochastic chaos keeps the fault surface varied per seed;
            // materialize() guarantees at least one survivor per tier, so
            // migrations here come only from the conservative windows'
            // worst case, not guaranteed tier loss.
            cfg.faults = FaultPlan {
                seed,
                crash_rate_prefill: 0.01,
                crash_rate_decode: 0.01,
                stall_rate: 0.02,
                stall_secs: 1.0,
                ..FaultPlan::none()
            };
            let models = market_models(n_models);
            let trace = uniform_trace(n_models, rate, 60.0, seed, LengthDist::sharegpt());
            let (serial, rep1) = run_sharded_audited(&cfg, &models, &trace, 2, 1);
            let (parallel, rep3) = run_sharded_audited(&cfg, &models, &trace, 2, 3);
            prop_assert!(rep1.ok(), "serial audit failed:\n{}", rep1);
            prop_assert!(rep3.ok(), "parallel audit failed:\n{}", rep3);
            prop_assert_eq!(serial.fingerprint(), parallel.fingerprint());
        }
    }
}
