//! Golden test for the SLO observatory analyzer: a fixed-seed run must
//! render byte-identical markdown, release after release. Regenerate the
//! golden file after an intentional format change with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p aegaeon-bench --test slo_analyze
//! ```

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::analyze::Analysis;
use aegaeon_bench::{analyze, market_models, uniform_trace};
use aegaeon_telemetry::TelemetrySpec;
use aegaeon_workload::LengthDist;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/slo_report.md");

fn fixed_run_markdown() -> String {
    let n_models = 3;
    let models = market_models(n_models);
    let trace = uniform_trace(n_models, 0.08, 60.0, 20250713, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = 20250713;
    cfg.telemetry = TelemetrySpec::enabled();
    let r = ServingSystem::run(&cfg, &models, &trace);
    analyze::analyze_run(&r).expect("analyzable run").to_markdown()
}

#[test]
fn analyzer_markdown_matches_golden_byte_for_byte() {
    let md = fixed_run_markdown();
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &md).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing — run with REGEN_GOLDEN=1 to create it");
    assert_eq!(
        md, golden,
        "analyzer markdown drifted from tests/golden/slo_report.md; \
         regenerate with REGEN_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn analyzer_markdown_is_deterministic_across_runs() {
    assert_eq!(fixed_run_markdown(), fixed_run_markdown());
}

#[test]
fn analyzer_round_trips_through_the_exported_document() {
    // The in-process path (`analyze_run`) and the file path the CLI takes
    // (`slo_json` → `from_slo_text`) must agree exactly.
    let n_models = 3;
    let models = market_models(n_models);
    let trace = uniform_trace(n_models, 0.08, 60.0, 20250713, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = 20250713;
    cfg.telemetry = TelemetrySpec::enabled();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let direct = analyze::analyze_run(&r).expect("analyzable run");
    let doc = aegaeon_telemetry::slo_json(&r.telemetry.slo, &r.telemetry.attrib);
    let via_text = Analysis::from_slo_text(&doc).expect("parsable export");
    assert_eq!(direct.to_markdown(), via_text.to_markdown());
    assert!(direct.consistency_errors().is_empty(), "{:?}", direct.consistency_errors());
}
