//! Property-based invariants for the agentic session workload generator
//! and its lowering into the flat request stream.

use proptest::prelude::*;

use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{SessionBuilder, SessionId};

fn build(seed: u64, n_models: u32, rate: f64, depth_max: u32, gap: f64, fanout: f64) -> aegaeon_workload::SessionWorkload {
    let mut rng = SimRng::seed_from_u64(seed);
    SessionBuilder::new(SimTime::from_secs_f64(300.0), n_models, rate)
        .depth(1, depth_max)
        .think_gap(gap, 0.7)
        .fanout(fanout, 2)
        .generate(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generation + lowering is a pure function of the seed, and the
    /// lowered trace is well-formed: sorted arrivals, dense ids, per-turn
    /// prompt = shared prefix + nonempty delta.
    #[test]
    fn lowering_is_deterministic_and_well_formed(
        seed in 0u64..5000,
        n_models in 1u32..6,
        depth_max in 1u32..7,
        gap in 0.0f64..30.0,
    ) {
        // Derive the remaining knobs from the seed (the vendored proptest
        // caps strategy tuples at arity 4).
        let rate = 0.005 + (seed % 10) as f64 * 0.004;
        let fanout = (seed % 5) as f64 * 0.1;
        let a = build(seed, n_models, rate, depth_max, gap, fanout);
        let b = build(seed, n_models, rate, depth_max, gap, fanout);
        prop_assert_eq!(&a, &b, "generation must be seed-deterministic");
        let ta = a.lower();
        let tb = b.lower();
        prop_assert_eq!(&ta.requests, &tb.requests, "lowering must be deterministic");

        prop_assert!(ta.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        for (i, r) in ta.requests.iter().enumerate() {
            prop_assert_eq!(r.id.0, i as u64, "ids are dense in arrival order");
            prop_assert!(r.input_tokens >= 1 && r.output_tokens >= 1);
            if r.session.is_some() {
                // prompt = prefix + delta with delta >= 1.
                prop_assert!(r.input_tokens > r.prefix_tokens);
            } else {
                prop_assert_eq!(r.turn_index, 0);
                prop_assert_eq!(r.prefix_tokens, 0);
            }
            prop_assert!(r.arrival() < ta.horizon);
        }
        prop_assert_eq!(
            ta.requests.iter().filter(|r| r.session.is_some()).count(),
            a.total_turns()
        );
    }

    /// Per session: arrivals strictly increase, turn indices are dense from
    /// zero, the prefix chain replays the whole prior conversation, and
    /// every DAG child arrives after its parent turn's estimated last
    /// token.
    #[test]
    fn sessions_chain_prefixes_and_order_turns(
        seed in 0u64..5000,
        n_models in 2u32..6,
        depth_max in 2u32..7,
        gap in 0.1f64..20.0,
    ) {
        let w = build(seed, n_models, 0.03, depth_max, gap, 0.4);
        for s in &w.sessions {
            prop_assert!(!s.turns.is_empty());
            prop_assert_eq!(s.turns[0].prefix_tokens, 0, "first turn has no prefix");
            for k in 1..s.turns.len() {
                let prev = &s.turns[k - 1];
                let cur = &s.turns[k];
                prop_assert!(cur.arrival > prev.arrival, "arrivals strictly increase");
                prop_assert_eq!(
                    cur.prefix_tokens,
                    prev.input_tokens() + prev.output_tokens,
                    "prefix replays the whole conversation so far"
                );
                prop_assert!(cur.delta_tokens >= 1);
            }
            for c in &s.children {
                prop_assert!((c.after_turn as usize) < s.turns.len());
                prop_assert!(c.model != s.model, "children fan out to other models");
                prop_assert!(
                    c.arrival > s.est_completion(c.after_turn as usize, &w.est),
                    "children arrive after the parent's estimated last token"
                );
            }
        }
        // Session ids are unique across the workload.
        let mut ids: Vec<u64> = w.sessions.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), w.sessions.len());
        prop_assert!(ids.iter().all(|&i| SessionId(i).is_some()));
    }

    /// Lowered turn ordering: within one session the flat trace preserves
    /// turn order (sorting by arrival cannot reorder strictly increasing
    /// per-session arrivals).
    #[test]
    fn lowered_trace_preserves_per_session_turn_order(
        seed in 0u64..5000,
        depth_max in 2u32..7,
    ) {
        let w = build(seed, 3, 0.03, depth_max, 5.0, 0.0);
        let t = w.lower();
        let mut last_turn: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        for r in &t.requests {
            if !r.session.is_some() {
                continue;
            }
            match last_turn.get(&r.session.0) {
                None => prop_assert_eq!(r.turn_index, 0, "turns start at zero"),
                Some(&prev) => prop_assert_eq!(r.turn_index, prev + 1, "turn indices are dense"),
            }
            last_turn.insert(r.session.0, r.turn_index);
        }
    }
}
