//! Failure injection: the Fig. 5 proxy status-sync path must recover
//! stranded requests when serving instances die mid-run.
//!
//! Crashes are injected through the seeded chaos engine
//! (`FaultPlan::crashes`), and every recovery test runs with the invariant
//! auditor enabled, so a run that completes has also been checked for
//! request conservation, token ordering, and memory/bandwidth accounting
//! at every event.

use aegaeon::chaos::FaultPlan;
use aegaeon::events::InstKind;
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_workload::{LengthDist, SloSpec};

const SEED: u64 = 777;

fn base_cfg() -> AegaeonConfig {
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = SEED;
    cfg.audit = true;
    cfg
}

#[test]
fn decode_instance_failure_recovers_all_requests() {
    let models = market_models(8);
    let trace = uniform_trace(8, 0.1, 200.0, SEED, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[(60.0, InstKind::Decode, 1)]);
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(
        r.completed, r.total_requests,
        "every request must eventually complete despite the failure"
    );
    // Tokens stay well-formed: at most the oracle count, nondecreasing.
    for (o, req) in r.outcomes.iter().zip(&trace.requests) {
        assert!(o.token_times.len() as u32 <= req.output_tokens);
        assert!(o.token_times.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn prefill_instance_failure_recovers_all_requests() {
    let models = market_models(8);
    let trace = uniform_trace(8, 0.1, 200.0, SEED + 1, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[(45.0, InstKind::Prefill, 0)]);
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(r.completed, r.total_requests);
}

#[test]
fn double_failure_still_drains() {
    let models = market_models(6);
    let trace = uniform_trace(6, 0.08, 200.0, SEED + 2, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[
        (40.0, InstKind::Prefill, 1),
        (80.0, InstKind::Decode, 2),
    ]);
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(r.completed, r.total_requests);
    let rep = r.attainment(SloSpec::paper_default());
    assert!(
        rep.ratio() > 0.5,
        "losing 2 of 5 instances degrades but must not collapse: {}",
        rep.ratio()
    );
}

#[test]
fn concurrent_prefill_and_decode_failures_recover() {
    // Both tiers lose an instance at the same instant: the proxy has to
    // re-dispatch stranded prefills and migrate stranded decodes in the
    // same failover wave.
    let models = market_models(8);
    let trace = uniform_trace(8, 0.1, 200.0, SEED + 6, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[
        (55.0, InstKind::Prefill, 0),
        (55.0, InstKind::Decode, 2),
    ]);
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(r.completed, r.total_requests);
}

#[test]
fn failure_during_model_load_still_completes() {
    // Crash the prefill instance right as the run starts, while the very
    // first auto-scale (host→GPU model load) is still copying. Requests
    // whose model never finished loading must be re-dispatched elsewhere.
    let models = market_models(8);
    let trace = uniform_trace(8, 0.15, 150.0, SEED + 7, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[(1.5, InstKind::Prefill, 0)]);
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(
        r.completed, r.total_requests,
        "crash mid-load must not strand the loading model's requests"
    );
}

#[test]
fn back_to_back_failures_of_same_instance_recover() {
    // Decode 0 fails, recovers after failover_latency (2s in the paper
    // testbed), then fails again immediately after taking work back — twice.
    // Each re-crash strands the replacement's freshly migrated requests.
    let models = market_models(6);
    let trace = uniform_trace(6, 0.1, 200.0, SEED + 8, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[
        (30.0, InstKind::Decode, 0),
        (33.0, InstKind::Decode, 0),
        (36.0, InstKind::Decode, 0),
    ]);
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(r.completed, r.total_requests);
}

#[test]
fn failure_costs_attainment_relative_to_healthy_run() {
    let models = market_models(10);
    let trace = uniform_trace(10, 0.12, 200.0, SEED + 3, LengthDist::sharegpt());
    let healthy = ServingSystem::run(&base_cfg(), &models, &trace);
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[(50.0, InstKind::Decode, 0)]);
    let failed = ServingSystem::run(&cfg, &models, &trace);
    let h = healthy.attainment(SloSpec::paper_default()).ratio();
    let f = failed.attainment(SloSpec::paper_default()).ratio();
    assert!(
        f <= h + 0.01,
        "a failure cannot improve attainment: healthy {h:.3} vs failed {f:.3}"
    );
    assert_eq!(failed.completed, failed.total_requests);
}

#[test]
fn failure_runs_are_deterministic() {
    let models = market_models(6);
    let trace = uniform_trace(6, 0.1, 150.0, SEED + 4, LengthDist::sharegpt());
    let mut cfg = base_cfg();
    cfg.faults = FaultPlan::crashes(&[(30.0, InstKind::Decode, 1)]);
    let a = ServingSystem::run(&cfg, &models, &trace);
    let b = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(a.events, b.events);
    assert_eq!(a.completed, b.completed);
}

#[test]
#[should_panic(expected = "every decoding instance has failed")]
fn losing_all_decoders_is_fatal() {
    let models = market_models(4);
    let trace = uniform_trace(4, 0.2, 120.0, SEED + 5, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::small_testbed(1, 1);
    cfg.seed = SEED;
    cfg.faults = FaultPlan::crashes(&[(10.0, InstKind::Decode, 0)]);
    let _ = ServingSystem::run(&cfg, &models, &trace);
}
