//! Agentic session workloads end to end: prefix/KV reuse, session-affinity
//! scheduling, crash-forced recomputation, and determinism.
//!
//! Every run here is audited (`cfg.audit = true` panics on any invariant
//! violation), so the differential claims below — affinity strictly reduces
//! recomputed prefill tokens, crashes force recomputation without leaking
//! blocks — are checked against the double-entry memory books at every
//! event, not just at the end.

use aegaeon::chaos::FaultPlan;
use aegaeon::events::InstKind;
use aegaeon::shard::run_sharded;
use aegaeon::{AegaeonConfig, LiveRequest, ServingSession, ServingSystem};
use aegaeon_bench::market_models;
use aegaeon_sim::{SimDur, SimRng, SimTime};
use aegaeon_workload::{SessionBuilder, Trace};

const SEED: u64 = 4242;

/// A seeded multi-turn session trace: `n_models` models, sessions starting
/// at `rate`/s per model, 2–5 turns deep, generous think gaps so most
/// follow-ups arrive after their predecessor retired.
fn session_trace(seed: u64, n_models: u32, rate: f64, secs: f64) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed);
    SessionBuilder::new(SimTime::from_secs_f64(secs), n_models, rate)
        .depth(2, 5)
        .think_gap(15.0, 0.5)
        .generate(&mut rng)
        .lower()
}

fn cfg(affinity: bool) -> AegaeonConfig {
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = SEED;
    cfg.audit = true;
    cfg.session_affinity = affinity;
    cfg
}

/// The headline differential: the same seeded agentic trace run with
/// affinity on must show at least one prefix hit and strictly fewer
/// recomputed prefill tokens than with affinity off, and affinity off must
/// be fully inert (zero hits, zero reused tokens).
#[test]
fn affinity_reuses_prefixes_and_recomputes_strictly_less() {
    let models = market_models(4);
    let trace = session_trace(SEED, 4, 0.01, 400.0);
    assert!(
        trace.requests.iter().any(|r| r.session.is_some()),
        "trace must contain session turns"
    );

    let off = ServingSystem::run(&cfg(false), &models, &trace);
    let on = ServingSystem::run(&cfg(true), &models, &trace);

    assert_eq!(off.completed, off.total_requests);
    assert_eq!(on.completed, on.total_requests);

    assert_eq!(off.prefix_hits, 0, "affinity off must never claim");
    assert_eq!(off.prefill_tokens_reused, 0);
    assert!(
        on.prefix_hits >= 1,
        "affinity on must land at least one prefix hit"
    );
    assert!(on.prefill_tokens_reused > 0);
    assert!(
        on.prefill_tokens_recomputed < off.prefill_tokens_recomputed,
        "affinity must strictly reduce recomputed prefill tokens: on={} off={}",
        on.prefill_tokens_recomputed,
        off.prefill_tokens_recomputed
    );
    // Conservation: every shared-prefix token is either reused or
    // recomputed, and affinity-off recomputes all of them.
    let total_prefix: u64 = trace
        .requests
        .iter()
        .map(|r| u64::from(r.prefix_tokens.min(r.input_tokens.saturating_sub(1))))
        .sum();
    assert_eq!(off.prefill_tokens_recomputed, total_prefix);
    assert!(on.prefill_tokens_reused + on.prefill_tokens_recomputed >= total_prefix);
}

/// Affinity-on runs are deterministic: identical fingerprints across
/// repeated runs (the SessionBook iterates BTreeMaps, never hash order).
#[test]
fn affinity_run_is_deterministic() {
    let models = market_models(3);
    let trace = session_trace(SEED + 1, 3, 0.012, 300.0);
    let a = ServingSystem::run(&cfg(true), &models, &trace);
    let b = ServingSystem::run(&cfg(true), &models, &trace);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.prefix_hits, b.prefix_hits);
}

/// Chaos: a decoding-instance crash mid-run strands in-flight turns and
/// wipes that instance's retained session KV. Later turns of the affected
/// sessions must recompute their prefix instead of claiming a dead
/// holder's blocks, every request still completes, and the audited memory
/// books balance throughout.
#[test]
fn mid_session_crash_forces_prefix_recomputation() {
    let models = market_models(4);
    let trace = session_trace(SEED + 2, 4, 0.012, 400.0);
    let mut chaotic = cfg(true);
    chaotic.faults = FaultPlan::crashes(&[(60.0, InstKind::Decode, 1)]);
    let r = ServingSystem::run(&chaotic, &models, &trace);
    assert_eq!(
        r.completed, r.total_requests,
        "crash mid-session must not strand turns"
    );
    assert!(
        r.prefill_tokens_recomputed > 0,
        "a wiped holder forces at least some prefix recomputation"
    );

    // The crash must cost reuse relative to the same run without it.
    let clean = ServingSystem::run(&cfg(true), &models, &trace);
    assert_eq!(clean.completed, clean.total_requests);
    assert!(
        r.prefill_tokens_reused <= clean.prefill_tokens_reused,
        "a crash cannot create reuse: crashed={} clean={}",
        r.prefill_tokens_reused,
        clean.prefill_tokens_reused
    );
}

/// A tiny retention TTL expires session KV inside most think gaps: reuse
/// can only shrink relative to the default TTL, and the daemon's sweep
/// must free expired entries without tripping the audit.
#[test]
fn ttl_expiry_shrinks_reuse_and_stays_audit_clean() {
    let models = market_models(3);
    let trace = session_trace(SEED + 3, 3, 0.012, 300.0);
    let normal = ServingSystem::run(&cfg(true), &models, &trace);
    let mut short = cfg(true);
    short.session_kv_ttl = SimDur::from_secs_f64(0.5);
    let expired = ServingSystem::run(&short, &models, &trace);
    assert_eq!(expired.completed, expired.total_requests);
    assert!(
        expired.prefill_tokens_reused <= normal.prefill_tokens_reused,
        "expiring retained KV cannot increase reuse"
    );
    assert!(
        expired.prefill_tokens_recomputed >= normal.prefill_tokens_recomputed,
        "expired prefixes must be recomputed"
    );
}

/// Open-session injection of an agentic trace replays fingerprint-identical
/// through [`ServingSession::replay`], with session metadata round-tripping
/// through the recorded trace.
#[test]
fn session_injection_replays_fingerprint_identical() {
    let models = market_models(3);
    let plan = session_trace(SEED + 4, 3, 0.012, 200.0);
    let c = cfg(true);

    let mut live = ServingSession::open(&c, &models, plan.horizon);
    let inj = live.injector();
    for (i, r) in plan.requests.iter().enumerate() {
        inj.send(
            r.arrival(),
            LiveRequest {
                model: r.model,
                input_tokens: r.input_tokens,
                output_tokens: r.output_tokens,
                session: r.session,
                turn_index: r.turn_index,
                prefix_tokens: r.prefix_tokens,
                sink: None,
            },
        );
        if i % 4 == 0 {
            live.step_until(live.now() + SimDur::from_secs(3));
        }
    }
    live.step_until(SimTime::MAX);
    assert!(live.quiescent());
    let recorded = live.injected_trace();
    // Session metadata survives the recording round trip.
    for (orig, rec) in plan.requests.iter().zip(&recorded.requests) {
        assert_eq!(orig.session, rec.session);
        assert_eq!(orig.turn_index, rec.turn_index);
        assert_eq!(orig.prefix_tokens, rec.prefix_tokens);
    }
    let (live_result, _) = live.finish();
    assert!(live_result.prefix_hits >= 1, "injected sessions must reuse");

    let mut replayed = ServingSession::replay(&c, &models, &recorded);
    replayed.step_until(SimTime::MAX);
    let (replay_result, _) = replayed.finish();
    assert_eq!(live_result.fingerprint(), replay_result.fingerprint());
}

/// Sharded runs over a session trace are invariant across worker-thread
/// counts, with affinity on and chaos enabled.
#[test]
fn sharded_session_runs_are_thread_invariant() {
    let models = market_models(4);
    let trace = session_trace(SEED + 5, 4, 0.01, 300.0);
    let mut c = AegaeonConfig::paper_testbed();
    c.seed = SEED;
    c.audit = true;
    c.session_affinity = true;
    c.faults = FaultPlan::crashes(&[(80.0, InstKind::Decode, 1)]);
    let serial = run_sharded(&c, &models, &trace, 2, 1);
    let parallel = run_sharded(&c, &models, &trace, 2, 4);
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
    assert_eq!(serial.completed, serial.total_requests);
    assert!(
        serial.prefix_hits >= 1,
        "sharded affinity must still land prefix hits"
    );
}
