//! Whole-system invariants: memory accounting, scaling accounting and
//! utilization bounds over full serving runs.

use aegaeon::chaos::FaultPlan;
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_workload::{LengthDist, SloSpec};

const SEED: u64 = 321;

#[test]
fn auditor_is_a_pure_observer() {
    // Differential check: the invariant auditor must not perturb the
    // simulation. Across seeds and configs (healthy and chaotic), the
    // audited run must reproduce the plain run bit for bit.
    let mut chaotic = AegaeonConfig::small_testbed(2, 3);
    chaotic.faults = FaultPlan {
        seed: 11,
        crashes: vec![(40.0, aegaeon::events::InstKind::Decode, 0)],
        link_rate: 0.04,
        link_factor: 0.3,
        link_secs: 4.0,
        stage_oom_rate: 0.03,
        stage_oom_secs: 5.0,
        stall_rate: 0.02,
        stall_secs: 1.0,
        ..FaultPlan::none()
    };
    let configs = [AegaeonConfig::small_testbed(2, 3), chaotic];
    for cfg in &configs {
        for seed in [SEED, SEED + 100, SEED + 200] {
            let models = market_models(6);
            let trace = uniform_trace(6, 0.08, 120.0, seed, LengthDist::sharegpt());
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            let plain = ServingSystem::run(&cfg, &models, &trace);
            let (audited, report) = ServingSystem::run_audited(&cfg, &models, &trace);
            assert!(
                report.ok(),
                "seed {seed} plan \"{}\": {report}",
                cfg.faults
            );
            assert!(report.events_checked > 0);
            assert_eq!(plain.events, audited.events, "event counts diverged");
            assert_eq!(plain.completed, audited.completed);
            assert_eq!(plain.scale_count, audited.scale_count);
            assert_eq!(plain.swaps, audited.swaps);
            let ta: Vec<_> = plain.outcomes.iter().map(|o| &o.token_times).collect();
            let tb: Vec<_> = audited.outcomes.iter().map(|o| &o.token_times).collect();
            assert_eq!(ta, tb, "auditor perturbed per-token timestamps");
        }
    }
}

#[test]
fn fragmentation_and_utilization_are_bounded() {
    let models = market_models(24);
    let trace = uniform_trace(24, 0.12, 250.0, SEED, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let all = r.frag_rows.last().expect("All row");
    assert!(
        (0.0..=0.5).contains(&all.fragmentation),
        "overall CPU-cache fragmentation {:.3}",
        all.fragmentation
    );
    let util = r.mean_gpu_utilization();
    assert!((0.0..=1.0).contains(&util), "utilization {util}");
    for b in &r.gpu_busy {
        assert!(
            *b <= r.end_time.as_secs_f64() + 1e-6,
            "busy time cannot exceed wall time"
        );
    }
}

#[test]
fn scaling_books_balance() {
    let models = market_models(16);
    let trace = uniform_trace(16, 0.1, 200.0, SEED + 1, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(
        r.scale_latencies.len() as u64,
        r.scale_count,
        "every scale-up must record a latency"
    );
    assert!(r.prefetch_hits <= r.scale_count);
    assert!(r.scale_latencies.iter().all(|&x| (0.0..60.0).contains(&x)));
    // Each request swaps at least once (prefill offload) once decoded.
    assert!(r.swaps as usize >= r.completed);
}

#[test]
fn breakdown_covers_request_time() {
    let models = market_models(16);
    let trace = uniform_trace(16, 0.1, 200.0, SEED + 2, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let f = r.breakdown.fractions();
    let sum: f64 = f.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1, got {sum}");
    assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    // Prefill execution exists and decoding dominates execution time.
    assert!(f[1] > 0.0 && f[3] > 0.0);
}

#[test]
fn kv_sync_overhead_stays_sub_second() {
    // §7.3: per-request KV management overhead below one second.
    let models = market_models(32);
    let trace = uniform_trace(32, 0.1, 250.0, SEED + 3, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let over: usize = r
        .kv_sync_per_request
        .iter()
        .filter(|&&x| x > 1.0)
        .count();
    assert!(
        over * 50 < r.kv_sync_per_request.len(),
        "more than 2% of requests exceed 1 s of KV overhead ({over})"
    );
}

#[test]
fn multislot_colocation_reduces_paid_scale_ups() {
    // §8 extension: with two resident weight slots, switches among
    // colocated models are free, so fewer full scale-ups are paid.
    let models = market_models(48);
    let trace = uniform_trace(48, 0.1, 250.0, SEED + 5, LengthDist::sharegpt());
    let one = AegaeonConfig::paper_testbed();
    let mut two = AegaeonConfig::paper_testbed();
    two.weight_slots = 2;
    let a = ServingSystem::run(&one, &models, &trace);
    let b = ServingSystem::run(&two, &models, &trace);
    assert!(
        b.scale_count as f64 <= a.scale_count as f64 * 0.9,
        "two slots must cut paid scale-ups: {} vs {}",
        b.scale_count,
        a.scale_count
    );
    let ra = a.attainment(SloSpec::paper_default()).ratio();
    let rb = b.attainment(SloSpec::paper_default()).ratio();
    assert!(rb > ra - 0.05, "colocation must not cost much attainment: {rb:.3} vs {ra:.3}");
    // Determinism with slots enabled.
    let b2 = ServingSystem::run(&two, &models, &trace);
    assert_eq!(b.events, b2.events);
}

#[test]
fn disabling_prefetch_costs_attainment_or_switch_latency() {
    // Needs the rotation regime: enough models that decoding work lists
    // hold several batches, so the scheduler knows a "next model".
    let models = market_models(48);
    let trace = uniform_trace(48, 0.12, 250.0, SEED + 4, LengthDist::sharegpt());
    let with = AegaeonConfig::paper_testbed();
    let mut without = AegaeonConfig::paper_testbed();
    without.opts.prefetch = false;
    let a = ServingSystem::run(&with, &models, &trace);
    let b = ServingSystem::run(&without, &models, &trace);
    // Prefetching converts a fraction of scale-ups into near-instant
    // on-device promotions. (The *mean* can stay flat — prefetch copies
    // contend on the same PCIe link as cold loads — so assert on the
    // near-instant fraction, which is what Figure 15 reports.)
    let near_instant =
        |v: &Vec<f64>| v.iter().filter(|&&x| x <= 0.1).count() as f64 / v.len().max(1) as f64;
    assert!(a.prefetch_hits > 0);
    assert_eq!(b.prefetch_hits, 0);
    assert!(
        near_instant(&a.scale_latencies) > near_instant(&b.scale_latencies) + 0.05,
        "prefetching must produce near-instant scale-ups: {:.2} vs {:.2}",
        near_instant(&a.scale_latencies),
        near_instant(&b.scale_latencies)
    );
}

#[test]
fn long_run_stays_stable_and_balanced() {
    // A 20-minute, 64-model run on the paper testbed: the system must keep
    // draining (no leak/livelock), with every request eventually served and
    // all KV blocks returned (zero residual allocation in the CPU caches).
    let models = market_models(64);
    let trace = uniform_trace(64, 0.1, 1200.0, SEED + 6, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(r.completed, r.total_requests, "long run must drain fully");
    assert!(r.events > 100_000, "sanity: a real run happened ({})", r.events);
    // Utilization and fragmentation stay bounded over the long horizon.
    assert!(r.mean_gpu_utilization() < 0.95);
    let frag = r.frag_rows.last().expect("All row").fragmentation;
    assert!((0.0..0.5).contains(&frag), "fragmentation {frag}");
}
