//! SLO semantics end to end: attainment behaves per Figure 3 over real
//! serving runs.

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_workload::{LengthDist, SloSpec};

const SEED: u64 = 123;

#[test]
fn light_load_attains_nearly_everything() {
    let models = market_models(4);
    let trace = uniform_trace(4, 0.05, 200.0, SEED, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::small_testbed(1, 2);
    cfg.seed = SEED;
    let r = ServingSystem::run(&cfg, &models, &trace);
    let rep = r.attainment(SloSpec::paper_default());
    assert_eq!(r.completed, r.total_requests);
    assert!(rep.ratio() > 0.98, "attainment {}", rep.ratio());
    assert_eq!(rep.ttft_met, rep.requests, "all first tokens within 10 s");
}

#[test]
fn attainment_is_monotone_in_slo_strictness() {
    let models = market_models(16);
    let trace = uniform_trace(16, 0.1, 250.0, SEED + 1, LengthDist::sharegpt());
    let cfg = AegaeonConfig::small_testbed(2, 3);
    let r = ServingSystem::run(&cfg, &models, &trace);
    let base = SloSpec::paper_default();
    let mut last = 1.01;
    for f in [1.0, 0.5, 0.3, 0.2] {
        let ratio = r.attainment(base.scaled(f)).ratio();
        assert!(
            ratio <= last + 1e-9,
            "stricter SLO must not raise attainment (factor {f}: {ratio} > {last})"
        );
        last = ratio;
    }
}

#[test]
fn token_counts_are_conserved() {
    let models = market_models(8);
    let trace = uniform_trace(8, 0.1, 150.0, SEED + 2, LengthDist::sharegpt());
    let cfg = AegaeonConfig::small_testbed(1, 2);
    let r = ServingSystem::run(&cfg, &models, &trace);
    for (o, req) in r.outcomes.iter().zip(&trace.requests) {
        assert!(
            o.token_times.len() as u32 <= req.output_tokens,
            "no request may over-produce"
        );
        assert!(
            o.token_times.windows(2).all(|w| w[0] <= w[1]),
            "token times must be nondecreasing"
        );
        if let Some(&first) = o.token_times.first() {
            assert!(first >= req.arrival(), "tokens cannot precede arrival");
        }
    }
    let produced: usize = r.outcomes.iter().map(|o| o.token_times.len()).sum();
    let expected: u32 = trace.requests.iter().map(|r| r.output_tokens).sum();
    assert_eq!(
        r.completed, r.total_requests,
        "light load must finish everything"
    );
    assert_eq!(produced as u32, expected);
}

#[test]
fn longer_outputs_strain_the_same_pool_more() {
    let models = market_models(24);
    let slo = SloSpec::paper_default();
    let cfg = AegaeonConfig::small_testbed(2, 3);
    let base = uniform_trace(24, 0.1, 250.0, SEED + 3, LengthDist::sharegpt());
    let ox2 = uniform_trace(24, 0.1, 250.0, SEED + 3, LengthDist::sharegpt_ox2());
    let a = ServingSystem::run(&cfg, &models, &base).attainment(slo).ratio();
    let b = ServingSystem::run(&cfg, &models, &ox2).attainment(slo).ratio();
    assert!(b <= a + 0.02, "ox2 ({b:.3}) must not beat the base dataset ({a:.3})");
}

#[test]
fn tp4_serves_large_models() {
    use aegaeon_model::Zoo;
    let zoo = Zoo::standard();
    let models = Zoo::replicate(&[zoo.get("Qwen-72B").expect("zoo")], 2);
    let trace = uniform_trace(2, 0.05, 200.0, SEED + 4, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::tp4_testbed();
    cfg.seed = SEED;
    let r = ServingSystem::run(&cfg, &models, &trace);
    assert_eq!(r.completed, r.total_requests);
    let rep = r.attainment(SloSpec::paper_default());
    assert!(rep.ratio() > 0.8, "72B TP4 light load: {}", rep.ratio());
}
