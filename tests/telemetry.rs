//! Telemetry end-to-end tests: the span/metrics subsystem must be a pure
//! observer (bit-identical behavior on or off, across every system), its
//! exports must be deterministic byte-for-byte, and real runs must produce
//! well-formed span trees with the lifecycle phases the paper's figures
//! need (queue wait, prefill, decode rounds, switches, KV transfers).

use aegaeon::chaos::FaultPlan;
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::engine_loop::WorldConfig;
use aegaeon_baselines::{MuxServe, ServerlessLlm, SllmConfig};
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_sim::{SimDur, TraceLog};
use aegaeon_telemetry::{chrome_trace, looks_like_trace_event_json, SpanKind, TelemetrySpec};
use aegaeon_workload::LengthDist;

const SEEDS: [u64; 3] = [7, 42, 20250713];
const N_MODELS: usize = 5;
const RATE: f64 = 0.12;
const SECS: f64 = 90.0;

fn aegaeon_cfg(seed: u64, telemetry: bool) -> AegaeonConfig {
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = seed;
    cfg.telemetry = if telemetry {
        TelemetrySpec::enabled()
    } else {
        TelemetrySpec::disabled()
    };
    cfg
}

// ----- Differential: telemetry must not perturb the simulation ----------

#[test]
fn aegaeon_results_are_bit_identical_with_telemetry_on() {
    for seed in SEEDS {
        let models = market_models(N_MODELS);
        let trace = uniform_trace(N_MODELS, RATE, SECS, seed, LengthDist::sharegpt());
        let off = ServingSystem::run(&aegaeon_cfg(seed, false), &models, &trace);
        let on = ServingSystem::run(&aegaeon_cfg(seed, true), &models, &trace);
        assert!(!off.telemetry.is_enabled());
        assert!(on.telemetry.is_enabled());
        assert!(
            !on.telemetry.spans.spans().is_empty(),
            "enabled telemetry must record spans"
        );
        assert_eq!(
            off.fingerprint(),
            on.fingerprint(),
            "seed {seed}: telemetry perturbed the Aegaeon run"
        );
    }
}

#[test]
fn aegaeon_results_are_bit_identical_under_chaos() {
    // The observer property must survive failover/retry/preemption paths.
    for seed in SEEDS {
        let models = market_models(N_MODELS);
        let trace = uniform_trace(N_MODELS, RATE, SECS, seed, LengthDist::sharegpt());
        let plan = FaultPlan {
            seed,
            crashes: Vec::new(),
            crash_rate_prefill: 0.01,
            crash_rate_decode: 0.015,
            link_rate: 0.03,
            link_factor: 0.4,
            link_secs: 4.0,
            stage_oom_rate: 0.02,
            stage_oom_secs: 4.0,
            stall_rate: 0.02,
            stall_secs: 0.8,
        };
        let mut off_cfg = aegaeon_cfg(seed, false);
        off_cfg.faults = plan.clone();
        let mut on_cfg = aegaeon_cfg(seed, true);
        on_cfg.faults = plan;
        let off = ServingSystem::run(&off_cfg, &models, &trace);
        let on = ServingSystem::run(&on_cfg, &models, &trace);
        assert_eq!(
            off.fingerprint(),
            on.fingerprint(),
            "seed {seed}: telemetry perturbed the chaos run"
        );
    }
}

#[test]
fn serverlessllm_results_are_bit_identical_with_telemetry_on() {
    for seed in SEEDS {
        let models = market_models(N_MODELS);
        let trace = uniform_trace(N_MODELS, RATE, SECS, seed, LengthDist::sharegpt());
        let cluster = aegaeon_cfg(seed, false).cluster;
        let mut off_cfg = SllmConfig::new(cluster.clone());
        off_cfg.world.seed = seed;
        let mut on_cfg = SllmConfig::new(cluster);
        on_cfg.world.seed = seed;
        on_cfg.world.telemetry = TelemetrySpec::enabled();
        let off = ServerlessLlm::run(&off_cfg, &models, &trace);
        let on = ServerlessLlm::run(&on_cfg, &models, &trace);
        assert!(!on.telemetry.spans.spans().is_empty());
        assert_eq!(
            off.fingerprint(),
            on.fingerprint(),
            "seed {seed}: telemetry perturbed the ServerlessLLM run"
        );
    }
}

#[test]
fn muxserve_results_are_bit_identical_with_telemetry_on() {
    for seed in SEEDS {
        let models = market_models(N_MODELS);
        let trace = uniform_trace(N_MODELS, RATE, SECS, seed, LengthDist::sharegpt());
        let cluster = aegaeon_cfg(seed, false).cluster;
        let rates = vec![RATE; N_MODELS];
        let mut off_cfg = WorldConfig::sllm_default(cluster.clone());
        off_cfg.seed = seed;
        let mut on_cfg = WorldConfig::sllm_default(cluster);
        on_cfg.seed = seed;
        on_cfg.telemetry = TelemetrySpec::enabled();
        let off = MuxServe::run(&off_cfg, &models, &rates, &trace);
        let on = MuxServe::run(&on_cfg, &models, &rates, &trace);
        assert_eq!(
            off.fingerprint(),
            on.fingerprint(),
            "seed {seed}: telemetry perturbed the MuxServe run"
        );
    }
}

// ----- Export determinism -----------------------------------------------

#[test]
fn chrome_trace_is_byte_identical_across_same_seed_runs() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 42, LengthDist::sharegpt());
    let render = || {
        let mut cfg = aegaeon_cfg(42, true);
        cfg.trace_schedule = true;
        let r = ServingSystem::run(&cfg, &models, &trace);
        (
            chrome_trace(&r.schedule, &r.telemetry.spans, &r.telemetry.metrics),
            aegaeon_telemetry::jsonl(&r.telemetry.spans, &r.telemetry.metrics),
        )
    };
    let (json_a, jsonl_a) = render();
    let (json_b, jsonl_b) = render();
    assert!(looks_like_trace_event_json(&json_a));
    assert_eq!(json_a, json_b, "Chrome trace export must be deterministic");
    assert_eq!(jsonl_a, jsonl_b, "JSONL export must be deterministic");
}

// ----- Span-tree well-formedness and coverage on real runs --------------

#[test]
fn aegaeon_span_log_is_well_formed_and_covers_the_lifecycle() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 7, LengthDist::sharegpt());
    let mut cfg = aegaeon_cfg(7, true);
    cfg.telemetry = TelemetrySpec::with_sample_every(SimDur::from_millis(250));
    let r = ServingSystem::run(&cfg, &models, &trace);
    let tel = &r.telemetry;

    if let Some(err) = tel.spans.validate() {
        panic!("span log invalid: {err}");
    }

    let has = |k: SpanKind| tel.spans.spans().iter().any(|s| s.kind == k);
    assert!(has(SpanKind::Request), "missing request root spans");
    assert!(has(SpanKind::QueueWait), "missing queue-wait spans");
    assert!(has(SpanKind::Prefill), "missing prefill spans");
    assert!(has(SpanKind::DecodeRound), "missing decode-round spans");
    assert!(has(SpanKind::Switch), "missing model-switch spans");
    assert!(has(SpanKind::Decision), "missing scheduler-decision instants");
    assert!(
        r.swaps == 0 || has(SpanKind::KvTransfer),
        "run performed {} swaps but recorded no kv-transfer spans",
        r.swaps
    );

    // Roots cover every arrival; phases parent back to their root.
    let roots = tel
        .spans
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Request)
        .count();
    assert_eq!(roots, trace.len(), "one root span per request");

    // The counter/gauge series the figures need, sampled on the grid.
    let step = SimDur::from_millis(250).as_nanos();
    for name in [
        "prefill_queue_depth",
        "vram_kv_used_bytes",
        "active_models",
        "events_dispatched",
        "kv_swaps",
        "switches",
    ] {
        let series = tel
            .metrics
            .counter_series()
            .chain(tel.metrics.gauge_series())
            .find(|(n, _)| *n == name);
        let (_, samples) = series.unwrap_or_else(|| panic!("missing series {name}"));
        assert!(!samples.is_empty(), "series {name} never sampled");
        for s in samples {
            assert_eq!(
                s.at.as_nanos() % step,
                0,
                "sample for {name} off the sampling grid"
            );
        }
    }
}

#[test]
fn baseline_span_logs_are_well_formed() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 42, LengthDist::sharegpt());
    let cluster = aegaeon_cfg(42, false).cluster;

    let mut scfg = SllmConfig::new(cluster.clone());
    scfg.world.seed = 42;
    scfg.world.telemetry = TelemetrySpec::enabled();
    let sr = ServerlessLlm::run(&scfg, &models, &trace);
    if let Some(err) = sr.telemetry.spans.validate() {
        panic!("serverless-llm span log invalid: {err}");
    }

    let mut mcfg = WorldConfig::sllm_default(cluster);
    mcfg.seed = 42;
    mcfg.telemetry = TelemetrySpec::enabled();
    let rates = vec![RATE; N_MODELS];
    let mr = MuxServe::run(&mcfg, &models, &rates, &trace);
    if let Some(err) = mr.telemetry.spans.validate() {
        panic!("muxserve span log invalid: {err}");
    }
    assert!(mr
        .telemetry
        .spans
        .spans()
        .iter()
        .any(|s| s.kind == SpanKind::Switch));
}

#[test]
fn chaos_run_span_log_stays_well_formed() {
    // Crashes strand phases, retries reopen them, and degraded links let KV
    // transfers outlive their request roots: validate() must still pass.
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 11, LengthDist::sharegpt());
    let mut cfg = aegaeon_cfg(11, true);
    cfg.faults = FaultPlan {
        seed: 11,
        crashes: Vec::new(),
        crash_rate_prefill: 0.012,
        crash_rate_decode: 0.018,
        link_rate: 0.04,
        link_factor: 0.3,
        link_secs: 5.0,
        stage_oom_rate: 0.03,
        stage_oom_secs: 5.0,
        // Stalls dense enough that some arrivals land inside a window and
        // take the retry-with-backoff path.
        stall_rate: 0.1,
        stall_secs: 5.0,
    };
    cfg.drain_window = SimDur::from_secs(500);
    let r = ServingSystem::run(&cfg, &models, &trace);
    if let Some(err) = r.telemetry.spans.validate() {
        panic!("chaos span log invalid: {err}");
    }
    assert!(
        r.telemetry.spans.spans().iter().any(|s| s.kind == SpanKind::Retry),
        "chaos run should record retry instants"
    );
    let totals: std::collections::HashMap<&str, f64> =
        r.telemetry.metrics.counter_totals().collect();
    assert!(totals["chaos_crashes"] > 0.0, "chaos crashes not counted");
    assert_eq!(totals["events_dispatched"], r.events as f64);
}

// ----- SLO observatory ---------------------------------------------------

#[test]
fn slo_observatory_populates_on_telemetry_runs() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 42, LengthDist::sharegpt());
    let r = ServingSystem::run(&aegaeon_cfg(42, true), &models, &trace);
    let tel = &r.telemetry;

    // Cumulative per-model accounting covers every retired token.
    assert!(tel.slo.is_enabled());
    assert_eq!(tel.slo.n_models(), N_MODELS);
    let cum = tel.slo.cumulative();
    let requests: u64 = cum.iter().map(|c| c.requests).sum();
    assert_eq!(requests, r.completed as u64, "every completion observed");
    for (m, c) in cum.iter().enumerate() {
        assert!(c.tokens_met <= c.tokens, "model {m}: met > produced");
        let a = tel.slo.attainment(m);
        assert!((0.0..=1.0).contains(&a), "model {m}: attainment {a}");
    }
    assert!(!tel.slo.points().is_empty(), "no windowed SLO points");

    // The per-model latency sketches carry one TTFT sample per completion.
    let ttft_count: u64 = tel
        .metrics
        .sketches()
        .filter(|(n, _)| n.starts_with("ttft_seconds{"))
        .map(|(_, s)| s.count())
        .sum();
    assert_eq!(ttft_count, r.completed as u64);

    // The attribution ledger saw both useful and overhead GPU time, and
    // every cell is finite and non-negative.
    assert!(tel.attrib.is_enabled());
    assert!(tel.attrib.useful_secs() > 0.0, "no useful time attributed");
    assert!(
        r.scale_count == 0 || tel.attrib.overhead_secs() > 0.0,
        "run switched {} times but attributed no overhead",
        r.scale_count
    );
    for (inst, model, kind, secs) in tel.attrib.rows() {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "ledger cell {inst}/{model}/{} = {secs}",
            kind.name()
        );
    }
}

#[test]
fn slo_exports_are_byte_identical_across_same_seed_runs() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 7, LengthDist::sharegpt());
    let render = || {
        let r = ServingSystem::run(&aegaeon_cfg(7, true), &models, &trace);
        aegaeon_telemetry::slo_json(&r.telemetry.slo, &r.telemetry.attrib)
    };
    let a = render();
    assert_eq!(a, render(), "SLO export must be deterministic");
    assert!(a.contains("\"models\""));
    assert!(a.contains("\"attribution\""));
}

// ----- Surfaced engine statistics ---------------------------------------

#[test]
fn registry_surfaces_queue_auditor_and_chaos_counts() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 42, LengthDist::sharegpt());
    let mut cfg = aegaeon_cfg(42, true);
    cfg.audit = true;
    let (r, report) = ServingSystem::run_audited(&cfg, &models, &trace);
    assert!(report.ok());
    let totals: std::collections::HashMap<&str, f64> =
        r.telemetry.metrics.counter_totals().collect();
    assert_eq!(totals["events_dispatched"], r.events as f64);
    assert_eq!(totals["audit_checks"], report.events_checked as f64);
    assert_eq!(totals["audit_violations"], report.violations.len() as f64);
    assert_eq!(totals["completed_requests"], r.completed as f64);
    assert_eq!(totals["switches"], r.scale_count as f64);
    assert_eq!(totals["kv_swaps"], r.swaps as f64);
    assert_eq!(totals["prefetch_hits"], r.prefetch_hits as f64);
}

#[test]
fn exported_chrome_trace_validates_structurally() {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, RATE, SECS, 42, LengthDist::sharegpt());
    let mut cfg = aegaeon_cfg(42, true);
    cfg.trace_schedule = true;
    let r = ServingSystem::run(&cfg, &models, &trace);
    let json = chrome_trace(&r.schedule, &r.telemetry.spans, &r.telemetry.metrics);
    assert!(looks_like_trace_event_json(&json));
    let events = parse_trace_events(&json);
    assert!(!events.is_empty());
    let mut phases = std::collections::HashSet::new();
    for e in &events {
        let serde_json::Value::Object(obj) = e else {
            panic!("trace event is not an object: {e:?}");
        };
        let Some(serde_json::Value::String(ph)) = obj.get("ph") else {
            panic!("event missing ph: {obj:?}");
        };
        phases.insert(ph.clone());
        if ph != "M" {
            assert!(obj.get("ts").is_some(), "event missing ts: {obj:?}");
        }
        assert!(obj.get("pid").is_some(), "event missing pid: {obj:?}");
    }
    for need in ["M", "X", "C"] {
        assert!(phases.contains(need), "no {need} events in export");
    }

    // Telemetry off exports an empty-but-valid JSON document (the
    // `looks_like` heuristic wants real events, so only parse it).
    let empty = chrome_trace(
        &TraceLog::disabled(),
        &aegaeon_telemetry::SpanLog::disabled(),
        &aegaeon_telemetry::MetricsRegistry::disabled(),
    );
    parse_trace_events(&empty);
}

/// Parses a Chrome trace export and returns its `traceEvents` array.
fn parse_trace_events(json: &str) -> Vec<serde_json::Value> {
    let v: serde_json::Value = serde_json::from_str(json).expect("valid JSON");
    let serde_json::Value::Object(top) = v else {
        panic!("trace export is not an object");
    };
    match top.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events.clone(),
        other => panic!("traceEvents is not an array: {other:?}"),
    }
}
