//! Cross-system integration tests: the paper's comparative claims must
//! hold end to end on the full stack (workload → schedulers → fabric →
//! metrics).

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::engine_loop::WorldConfig;
use aegaeon_baselines::{MuxServe, ServerlessLlm, SllmConfig};
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_gpu::ClusterSpec;
use aegaeon_workload::{LengthDist, SloSpec};

const SEED: u64 = 99;

#[test]
fn aegaeon_beats_request_level_scaling_under_pooling_pressure() {
    // The §7.2 regime: many more models than GPUs, sporadic rates.
    let n = 48;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.1, 300.0, SEED, LengthDist::sharegpt());
    let slo = SloSpec::paper_default();

    let aeg = ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace);
    let sllm = ServerlessLlm::run(
        &SllmConfig::new(ClusterSpec::paper_testbed()),
        &models,
        &trace,
    );
    let a = aeg.attainment(slo).ratio();
    let s = sllm.attainment(slo).ratio();
    assert!(a > s + 0.1, "Aegaeon {a:.3} must clearly beat SLLM {s:.3}");
    assert!(a > 0.9, "Aegaeon should still meet the 90% bar at 48 models: {a:.3}");
}

#[test]
fn muxserve_is_hard_capped_by_memory() {
    // §7.2: the placement optimizer cannot serve more than 32 models on
    // 16 × 80 GB GPUs; beyond that, attainment is bounded by placement.
    let n = 48;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.1, 200.0, SEED + 1, LengthDist::sharegpt());
    let cfg = WorldConfig::sllm_default(ClusterSpec::paper_testbed());
    let rates = vec![0.1; n];
    let r = MuxServe::run(&cfg, &models, &rates, &trace);
    assert!(r.rejected > 0, "over-capacity models must be unplaced");
    let ratio = r.attainment(SloSpec::paper_default()).ratio();
    assert!(
        ratio < 0.85,
        "48 models cannot fully attain with a 32-model cap: {ratio:.3}"
    );
}

#[test]
fn sjf_extension_degrades_under_heavy_load() {
    // §7.2: "ServerlessLLM outperforms ServerlessLLM+ in this scenario, as
    // prioritizing shorter requests ... leads to overly frequent
    // auto-scaling."
    let n = 32;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.5, 240.0, SEED + 2, LengthDist::sharegpt());
    let slo = SloSpec::paper_default();
    let fcfs = ServerlessLlm::run(
        &SllmConfig::new(ClusterSpec::paper_testbed()),
        &models,
        &trace,
    );
    let sjf = ServerlessLlm::run(
        &SllmConfig::plus(ClusterSpec::paper_testbed()),
        &models,
        &trace,
    );
    let f = fcfs.attainment(slo).ratio();
    let s = sjf.attainment(slo).ratio();
    assert!(
        f >= s - 0.02,
        "FCFS ({f:.3}) should not lose clearly to oracle SJF ({s:.3}) at RPS 0.5"
    );
}

#[test]
fn all_systems_are_deterministic_across_runs() {
    let n = 12;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.1, 120.0, SEED + 3, LengthDist::sharegpt());
    let slo = SloSpec::paper_default();

    let a1 = ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace);
    let a2 = ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace);
    assert_eq!(a1.events, a2.events);
    assert_eq!(a1.attainment(slo).tokens_met, a2.attainment(slo).tokens_met);

    let s1 = ServerlessLlm::run(&SllmConfig::new(ClusterSpec::paper_testbed()), &models, &trace);
    let s2 = ServerlessLlm::run(&SllmConfig::new(ClusterSpec::paper_testbed()), &models, &trace);
    assert_eq!(s1.attainment(slo).tokens_met, s2.attainment(slo).tokens_met);

    let cfg = WorldConfig::sllm_default(ClusterSpec::paper_testbed());
    let rates = vec![0.1; n];
    let m1 = MuxServe::run(&cfg, &models, &rates, &trace);
    let m2 = MuxServe::run(&cfg, &models, &rates, &trace);
    assert_eq!(m1.attainment(slo).tokens_met, m2.attainment(slo).tokens_met);
}

#[test]
fn ablation_ladder_is_monotone() {
    // T0 ≤ T1 ≤ T2 within tolerance: each optimization level should not
    // hurt under multi-model pressure.
    use aegaeon_engine::AutoscaleOpts;
    let n = 10;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.08, 200.0, SEED + 4, LengthDist::sharegpt());
    let slo = SloSpec::paper_default();
    let mut ratios = Vec::new();
    for opts in [AutoscaleOpts::t0(), AutoscaleOpts::t1(), AutoscaleOpts::t2()] {
        let mut cfg = AegaeonConfig::small_testbed(1, 2);
        cfg.opts = opts;
        let r = ServingSystem::run(&cfg, &models, &trace);
        ratios.push(r.attainment(slo).ratio());
    }
    assert!(
        ratios[1] >= ratios[0] - 0.02 && ratios[2] >= ratios[1] - 0.02,
        "ladder must be monotone-ish: {ratios:?}"
    );
    assert!(
        ratios[2] > ratios[0] + 0.2,
        "full memory optimizations must clearly beat T0: {ratios:?}"
    );
}
