//! Property-based cross-crate invariants (proptest).

use proptest::prelude::*;

use aegaeon::quota::{decode_quotas, QuotaInputs};
use aegaeon_mem::{BumpBuffer, BumpMark, Extent, SlabPool, SlabPoolConfig};
use aegaeon_metrics::{attainment, RequestOutcome};
use aegaeon_model::ModelId;
use aegaeon_sim::{FairLink, FlowId, SimDur, SimTime};
use aegaeon_workload::active::{active_count_series, mean_active};
use aegaeon_workload::{LengthDist, Request, RequestId, SloSpec, Trace, TraceBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quotas are finite, positive and bounded whenever inputs are sane.
    #[test]
    fn quotas_are_sane(
        steps in prop::collection::vec(1e-3f64..0.2, 1..10),
        tbt in 0.02f64..0.5,
        c in 0.0f64..20.0,
        qmax in 0.5f64..8.0,
    ) {
        let r = decode_quotas(&QuotaInputs {
            step_times: steps.clone(),
            tbt,
            switch_total: c,
            qmax,
        });
        prop_assert_eq!(r.quotas.len(), steps.len());
        for q in &r.quotas {
            prop_assert!(q.is_finite() && *q > 0.0 && *q <= qmax * 4.0 + 1e-9);
        }
        prop_assert!(r.alpha >= 0.5);
        prop_assert!((0.0..=1.0).contains(&r.est_attainment));
    }

    /// The slab pool never double-allocates and always balances its books.
    #[test]
    fn slab_pool_books_balance(ops in prop::collection::vec((0usize..3, 1usize..20), 1..60)) {
        let mut pool = SlabPool::new(SlabPoolConfig {
            capacity_bytes: 1 << 30,
            slab_bytes: 64 << 20,
        });
        let shapes = [
            pool.register_shape("s0", 1 << 20),
            pool.register_shape("s1", 3 << 20),
            pool.register_shape("s2", 7 << 20),
        ];
        let mut live: Vec<Vec<(aegaeon_mem::BlockRef, usize)>> = vec![Vec::new(); 3];
        let mut seen = std::collections::HashSet::new();
        for (si, n) in ops {
            let shape = shapes[si];
            if live[si].len() > 30 {
                // Free the oldest half.
                let drop: Vec<_> = live[si].drain(..15).collect();
                let blocks: Vec<_> = drop.iter().map(|(b, _)| *b).collect();
                for b in &blocks {
                    seen.remove(b);
                }
                pool.free(shape, &blocks);
            }
            if let Ok(blocks) = pool.alloc(shape, n) {
                for b in blocks {
                    prop_assert!(seen.insert(b), "double allocation of {:?}", b);
                    live[si].push((b, si));
                }
            }
            // The pool's own double-entry audit must pass at every step.
            prop_assert!(pool.audit().is_none(), "{:?}", pool.audit());
        }
        // Everything still live is tracked; free it all and the pool empties.
        for (si, v) in live.iter().enumerate() {
            let blocks: Vec<_> = v.iter().map(|(b, _)| *b).collect();
            pool.free(shapes[si], &blocks);
        }
        prop_assert_eq!(pool.slabs_in_use(), 0);
    }

    /// Attainment is within [0,1] and monotone in deadline generosity.
    #[test]
    fn attainment_bounds_and_monotonicity(
        arrivals in prop::collection::vec(0.0f64..100.0, 1..20),
        delay in 0.0f64..30.0,
        step_ms in 5.0f64..200.0,
        n_tokens in 1u32..60,
    ) {
        let outcomes: Vec<RequestOutcome> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let start = a + delay;
                RequestOutcome {
                    id: RequestId(i as u64),
                    model: ModelId(0),
                    arrival: SimTime::from_secs_f64(a),
                    token_times: (0..n_tokens)
                        .map(|k| SimTime::from_secs_f64(start + k as f64 * step_ms / 1e3))
                        .collect(),
                    target_tokens: n_tokens,
                }
            })
            .collect();
        let horizon = SimTime::from_secs_f64(1000.0);
        let tight = SloSpec { ttft: SimDur::from_secs(1), tbt: SimDur::from_millis(20) };
        let loose = SloSpec { ttft: SimDur::from_secs(30), tbt: SimDur::from_millis(500) };
        let rt = attainment(&outcomes, tight, horizon).ratio();
        let rl = attainment(&outcomes, loose, horizon).ratio();
        prop_assert!((0.0..=1.0).contains(&rt));
        prop_assert!((0.0..=1.0).contains(&rl));
        prop_assert!(rl >= rt);
    }

    /// The active-model count never exceeds the model count and roughly
    /// follows Theorem 3.1.
    #[test]
    fn active_count_respects_theorem(
        m in 2u32..30,
        rate in 0.01f64..0.3,
        service in 1.0f64..20.0,
        seed in 0u64..1000,
    ) {
        let mut rng = aegaeon_sim::SimRng::seed_from_u64(seed);
        let trace: Trace = TraceBuilder::new(
            SimTime::from_secs_f64(600.0),
            LengthDist::sharegpt(),
        )
        .uniform_models(&mut rng, m, rate)
        .build(&mut rng);
        let series = active_count_series(
            &trace,
            SimDur::from_secs_f64(service),
            SimDur::from_secs_f64(2.0),
        );
        prop_assert!(series.iter().all(|&(_, c)| c <= m));
        let mean = mean_active(&series[series.len() / 4..]);
        let expect = aegaeon_workload::expected_active(m, rate, service);
        // Loose statistical envelope.
        prop_assert!(mean <= m as f64 && (mean - expect).abs() < (0.5 * expect + 2.0),
            "mean {mean}, expect {expect}");
    }

    /// Trace synthesis conserves requests across models and stays sorted.
    #[test]
    fn trace_is_well_formed(m in 1u32..10, rate in 0.0f64..0.5, seed in 0u64..500) {
        let mut rng = aegaeon_sim::SimRng::seed_from_u64(seed);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(100.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, m, rate)
            .build(&mut rng);
        let counts = trace.per_model_counts(m as usize);
        prop_assert_eq!(counts.iter().sum::<usize>(), trace.len());
        prop_assert!(trace.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        for r in &trace.requests {
            prop_assert!(r.output_tokens >= 1);
            prop_assert!(r.input_tokens >= 4);
            let _: &Request = r;
        }
    }

    /// FairLink conserves bytes under arbitrary interleavings of flow
    /// starts, cancellations, completions and bandwidth degradations:
    /// started == delivered + in-flight at every step, and the link's own
    /// audit (which also bounds delivered by nominal-bw × busy-time)
    /// passes throughout.
    #[test]
    fn fair_link_conserves_bytes(
        ops in prop::collection::vec((0u32..4, 1u64..50_000_000, 1u64..2_000_000), 1..80),
    ) {
        let mut link = FairLink::new("prop", 12e9);
        let mut now = SimTime::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut degraded = false;
        for (op, bytes, dt_us) in ops {
            now += SimDur::from_nanos(dt_us * 1_000);
            match op {
                0 => live.push(link.start_flow(now, bytes)),
                1 => {
                    if !live.is_empty() {
                        let id = live.remove(bytes as usize % live.len());
                        prop_assert!(link.cancel_flow(now, id));
                    }
                }
                2 => {
                    if let Some((t, gen)) = link.deadline(now) {
                        now = t;
                        if let Some(done) = link.expire(now, gen) {
                            live.retain(|f| !done.contains(f));
                        }
                    }
                }
                _ => {
                    if degraded {
                        link.restore_bandwidth(now);
                    } else {
                        link.set_bandwidth(now, link.nominal_bandwidth() * 0.3);
                    }
                    degraded = !degraded;
                }
            }
            prop_assert!(link.audit().is_none(), "{:?}", link.audit());
            let started = link.bytes_started();
            let accounted = link.bytes_delivered() + link.bytes_in_flight();
            prop_assert!(
                (started - accounted).abs() <= 1.0 + started * 1e-9,
                "conservation: started {started} vs delivered+in-flight {accounted}"
            );
        }
        // Drain: every surviving flow completes and the books close.
        while let Some((t, gen)) = link.deadline(now) {
            now = t;
            if let Some(done) = link.expire(now, gen) {
                live.retain(|f| !done.contains(f));
            }
        }
        prop_assert!(live.is_empty(), "undrained flows: {live:?}");
        prop_assert!(link.in_flight() == 0);
        let started = link.bytes_started();
        prop_assert!(
            (started - link.bytes_delivered()).abs() <= 1.0 + started * 1e-9,
            "final books: started {started}, delivered {}",
            link.bytes_delivered()
        );
        prop_assert!(link.audit().is_none(), "{:?}", link.audit());
    }

    /// The bump allocator hands out non-overlapping, aligned, in-capacity
    /// extents; `would_fit` exactly predicts alloc success; and mark/rewind
    /// frees suffixes without disturbing earlier extents.
    #[test]
    fn bump_buffer_books_balance(
        cap_kb in 1u64..256,
        ops in prop::collection::vec((0u32..4, 1u64..5_000, 0u32..4), 1..100),
    ) {
        let mut buf = BumpBuffer::new(cap_kb << 10);
        let mut live: Vec<Extent> = Vec::new();
        let mut marks: Vec<(BumpMark, usize)> = Vec::new();
        for (op, len, align_pow) in ops {
            let align = 1u64 << (2 * align_pow); // 1, 4, 16, 64
            match op {
                0 | 1 => {
                    let fits = buf.would_fit(len, align);
                    match buf.alloc(len, align) {
                        Ok(e) => {
                            prop_assert!(fits, "would_fit denied a successful alloc");
                            prop_assert_eq!(e.offset % align, 0);
                            prop_assert!(e.end() <= buf.capacity());
                            for o in &live {
                                prop_assert!(
                                    e.offset >= o.end() || e.end() <= o.offset,
                                    "overlapping extents {:?} and {:?}", e, o
                                );
                            }
                            live.push(e);
                        }
                        Err(oom) => {
                            prop_assert!(!fits, "would_fit approved a failing alloc");
                            prop_assert_eq!(oom.requested, len);
                        }
                    }
                }
                2 => marks.push((buf.mark(), live.len())),
                // Popping the most recent mark keeps the stack monotone, so
                // rewind never sees a mark ahead of the cursor.
                _ => {
                    if let Some((m, n)) = marks.pop() {
                        buf.rewind(m);
                        live.truncate(n);
                    }
                }
            }
            prop_assert!(buf.used() <= buf.capacity());
            prop_assert_eq!(buf.remaining(), buf.capacity() - buf.used());
            let high = live.iter().map(Extent::end).max().unwrap_or(0);
            prop_assert!(buf.used() >= high, "cursor below a live extent");
        }
        buf.reset();
        prop_assert_eq!(buf.used(), 0);
        prop_assert!(buf.would_fit(buf.capacity(), 1));
    }
}
